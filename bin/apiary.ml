(* The `apiary` command-line driver: run simulated boards and inspect the
   OS from a terminal.

     apiary run --scenario kv --cycles 300000 --clients 4
     apiary run --scenario vpipe --trace
     apiary noc --pattern hotspot --rate 0.1 --cols 8 --rows 8
     apiary area --part VU9P --tiles 16

   See README.md for a walkthrough. *)

module Sim = Apiary_engine.Sim
module Rng = Apiary_engine.Rng
module Stats = Apiary_engine.Stats
module Mesh = Apiary_noc.Mesh
module Coord = Apiary_noc.Coord
module Traffic = Apiary_noc.Traffic
module Kernel = Apiary_core.Kernel
module Monitor = Apiary_core.Monitor
module Trace = Apiary_core.Trace
module Statsvc = Apiary_core.Statsvc
module Perf = Apiary_obs.Perf
module Flight = Apiary_obs.Flight
module Kv = Apiary_accel.Kv
module Accels = Apiary_accel.Accels
module Client = Apiary_net.Client
module Netproto = Apiary_net.Netproto
module Board = Apiary_apps.Board
module Video_pipeline = Apiary_apps.Video_pipeline
module Span = Apiary_obs.Span
module Registry = Apiary_obs.Registry
module Export = Apiary_obs.Export
module Slo = Apiary_obs.Slo
module Parts = Apiary_resource.Parts
module Area = Apiary_resource.Area
module Floorplan = Apiary_resource.Floorplan
open Cmdliner

(* ------------------------------------------------------------------ *)
(* run *)

type scenario = Echo | Kv_scenario | Vpipe

let scenario_conv =
  let parse = function
    | "echo" -> Ok Echo
    | "kv" -> Ok Kv_scenario
    | "vpipe" -> Ok Vpipe
    | s -> Error (`Msg (Printf.sprintf "unknown scenario %S (echo|kv|vpipe)" s))
  in
  let print ppf s =
    Format.pp_print_string ppf
      (match s with Echo -> "echo" | Kv_scenario -> "kv" | Vpipe -> "vpipe")
  in
  Arg.conv (parse, print)

let percentiles name h =
  Printf.printf "%-18s n=%-8d p50=%-8d p99=%-8d max=%d cycles\n" name
    (Stats.Histogram.count h)
    (Stats.Histogram.percentile h 50.0)
    (Stats.Histogram.percentile h 99.0)
    (Stats.Histogram.max_value h)

(* Install the scenario's accelerators on [board] and return the
   (service, opcode, request generator) triple the clients drive.
   Shared by `apiary run` and `apiary obs`. *)
let install_scenario board scenario seed =
  let kernel = board.Board.kernel in
  match scenario with
  | Echo ->
    (match Board.user_tiles board with
    | t :: _ -> Kernel.install kernel ~tile:t (Accels.echo ())
    | [] -> ());
    ("echo", Accels.op_echo, fun _ -> Bytes.make 64 'e')
  | Kv_scenario ->
    let kv_b, _ = Kv.behavior () in
    (match Board.user_tiles board with
    | t :: _ -> Kernel.install kernel ~tile:t kv_b
    | [] -> ());
    let rng = Rng.create ~seed in
    ( "kv",
      Kv.Proto.opcode,
      fun _ ->
        let key = Printf.sprintf "k%d" (Rng.zipf rng ~n:200 ~theta:0.9) in
        if Rng.chance rng 0.1 then
          Kv.Proto.encode_req (Kv.Proto.Put (key, Bytes.make 128 'v'))
        else Kv.Proto.encode_req (Kv.Proto.Get key) )
  | Vpipe ->
    (match Board.user_tiles board with
    | enc :: comp :: _ ->
      Video_pipeline.install kernel ~encoder_tile:enc ~compressor_tile:comp
    | _ -> ());
    let rng = Rng.create ~seed in
    let chunk = Rng.bytes_compressible rng 1024 ~redundancy:0.85 in
    ("vpipe", Accels.op_encode, fun _ -> chunk)

let run_cmd scenario cycles clients enforce trace_on seed =
  let sim = Sim.create () in
  let kcfg =
    {
      Kernel.default_config with
      Kernel.monitor = { Monitor.default_config with Monitor.enforce };
    }
  in
  let board = Board.create ~kernel_cfg:kcfg sim in
  let kernel = board.Board.kernel in
  if trace_on then Trace.set_enabled (Kernel.trace kernel) true;
  (* With APIARY_FLIGHT=1 the kernel armed its flight recorder at boot:
     dump the postmortem on the first fail-stop. *)
  Kernel.on_fault kernel (fun tile reason ->
      let f = Kernel.flight kernel in
      if Flight.enabled f then begin
        let path = "apiary_postmortem.json" in
        Flight.write_dump f
          ~reason:(Printf.sprintf "tile %d: %s" tile reason)
          ~cycle:(Sim.now sim) path;
        Printf.printf "flight recorder dumped -> %s\n" path
      end);
  let service, op, gen = install_scenario board scenario seed in
  let cs =
    List.init clients (fun idx ->
        let c = Board.client board ~port:(idx + 1) () in
        Sim.after sim (2_000 + (idx * 71)) (fun () ->
            Client.start_closed c { Client.service; op; gen } ~concurrency:4);
        c)
  in
  Sim.run_for sim cycles;
  List.iter Client.stop cs;
  let lat = Stats.Histogram.create "latency" in
  let total = ref 0 and errs = ref 0 in
  List.iter
    (fun c ->
      Stats.Histogram.merge_into ~src:(Client.latency c) ~dst:lat;
      total := !total + Client.completed c;
      errs := !errs + Client.errors c)
    cs;
  Printf.printf "scenario completed: %d requests (%d errors) in %d cycles (%.0f req/s)\n"
    !total !errs cycles
    (float_of_int !total /. (float_of_int cycles *. 4e-9));
  percentiles "client latency" lat;
  Printf.printf "fabric: %d messages, %d denied\n" (Kernel.total_msgs kernel)
    (Kernel.total_denied kernel);
  if trace_on then begin
    Printf.printf "\n--- last trace events ---\n";
    let evs = Trace.events (Kernel.trace kernel) in
    let n = List.length evs in
    List.iteri
      (fun idx (e : Trace.event) ->
        if idx >= n - 30 then
          Printf.printf "[%8d] tile%-3d %-5s %s\n" e.Trace.cycle e.Trace.tile
            (Trace.dir_to_string e.Trace.dir) e.Trace.detail)
      evs
  end;
  0

(* ------------------------------------------------------------------ *)
(* obs *)

let obs_cmd scenario cycles clients seed trace_out metrics_out =
  Registry.clear ();
  Span.reset ();
  Span.set_enabled true;
  let sim = Sim.create () in
  let board = Board.create sim in
  let kernel = board.Board.kernel in
  (* Free-standing board: stamp it board 0 so spans land on a named
     process row, and publish its kernel/NoC metrics under b0.*. *)
  Kernel.set_obs_board kernel 0;
  Kernel.register_metrics kernel ~prefix:"b0";
  let service, op, gen = install_scenario board scenario seed in
  let cs =
    List.init clients (fun idx ->
        let c = Board.client board ~port:(idx + 1) () in
        Sim.after sim (2_000 + (idx * 71)) (fun () ->
            Client.start_closed c { Client.service; op; gen } ~concurrency:4);
        c)
  in
  Sim.run_for sim cycles;
  List.iter Client.stop cs;
  Span.set_enabled false;
  Export.chrome_trace ~path:trace_out (Span.events ());
  Export.metrics_json ~path:metrics_out (Registry.snapshot ());
  let total =
    List.fold_left (fun acc c -> acc + Client.completed c) 0 cs
  in
  Printf.printf "obs: %s scenario, %d requests in %d cycles\n" service total
    cycles;
  Printf.printf "obs: %d spans (%d dropped) -> %s\n" (Span.count ())
    (Span.dropped ()) trace_out;
  Printf.printf "obs: %d instruments -> %s\n"
    (List.length (Registry.snapshot ()))
    metrics_out;
  Printf.printf "(open the trace in https://ui.perfetto.dev — 1 us = 1 cycle)\n";
  Span.reset ();
  Registry.clear ();
  0

(* ------------------------------------------------------------------ *)
(* top *)

(* A live per-tile counter view, htop-style, fed entirely in-band: a
   reader tile connects to the capability-gated stat service and polls
   every tile's counter block (plus the merged board summary, whose
   router columns come from the NoC blocks) over the fabric itself.
   --once renders only the final frame — the CI smoke mode. *)

let top_cmd scenario cycles clients interval once json seed slo_cycles =
  let sim = Sim.create () in
  let board = Board.create sim in
  let kernel = board.Board.kernel in
  let service, op, gen = install_scenario board scenario seed in
  (* SLO accounting rides the renders: each frame diffs the clients'
     latency histograms (count / count_le the bound) and feeds the
     deltas to a burn-rate tracker windowed on the refresh interval. *)
  let slo =
    Slo.create
      (Slo.default_objective ~window:interval ~min_samples:5 ~tenant:service
         ~latency_cycles:slo_cycles ())
  in
  let cs_ref = ref [] in
  let last_good = ref 0 and last_total = ref 0 in
  (* The scenario took user tiles from the front; take ours from the
     back so we never collide with it. *)
  let stat_tile, reader_tile =
    match List.rev (Board.user_tiles board) with
    | a :: b :: _ -> (a, b)
    | _ -> failwith "top: board too small"
  in
  ignore (Statsvc.install kernel ~tile:stat_tile);
  (* Watchdog sweeps pulse every tile's heartbeat counter (the hb
     column) and would flag a stuck or congested tile in the view. *)
  ignore (Apiary_core.Health.create kernel);
  let n = Kernel.n_tiles kernel in
  let blocks : Perf.t option array = Array.make (n + 1) None in
  let frames = ref 0 in
  (* SLO deltas are fed once per frame whatever the output mode; the
     human renderer prints on top of them, the JSON emitter reads the
     tracker after the run. *)
  let observe now =
    let total, good =
      List.fold_left
        (fun (t, g) c ->
          let h = Client.latency c in
          ( t + Stats.Histogram.count h,
            g + Stats.Histogram.count_le h slo_cycles ))
        (0, 0) !cs_ref
    in
    Slo.observe_n slo ~now ~good:(good - !last_good)
      ~bad:(total - !last_total - (good - !last_good));
    last_good := good;
    last_total := total
  in
  let render now =
    incr frames;
    if json then observe now
    else begin
      Printf.printf "\n-- apiary top: cycle %d, scenario %s (frame %d) --\n" now
        service !frames;
      Printf.printf "%-5s %-10s %8s %8s %8s %6s %6s %6s %6s %4s\n" "tile"
        "behavior" "msgs_in" "msgs_out" "syscalls" "deny" "drop" "nack" "fault"
        "hb";
      for t = 0 to n - 1 do
        match blocks.(t) with
        | None -> ()
        | Some p ->
          let r slot = Perf.read p slot in
          Printf.printf "%-5d %-10s %8d %8d %8d %6d %6d %6d %6d %4d\n" t
            (Monitor.behavior_name (Kernel.monitor kernel t))
            (r Perf.msgs_in) (r Perf.msgs_out) (r Perf.syscalls)
            (r Perf.denials) (r Perf.drops) (r Perf.nacks) (r Perf.faults)
            (r Perf.heartbeats)
      done;
      match blocks.(n) with
      | None -> ()
      | Some p ->
        (* The Board query merges every tile's monitor block with every
           router's, so busy/flits here are the whole board's. *)
        let flits = Perf.read p Perf.flits in
        let busy = Perf.read p Perf.busy in
        Printf.printf
          "board: %d flits routed (%.3f/cycle), %d credit stalls, peak router occ %d\n"
          flits
          (float_of_int flits /. float_of_int (max 1 now))
          (Perf.read p Perf.credit_stalls)
          (Perf.read p Perf.occ_peak);
        Printf.printf
          "board: %d router-busy cycles — %.1f%% mean router utilization\n" busy
          (100.0 *. float_of_int busy /. float_of_int (max 1 (now * n)));
        observe now;
        let obj = Slo.objective slo in
        Printf.printf
          "slo:   %d/%d within %d cycles — attainment %.1f%%, budget left \
           %.1f%%, burn fast %.1f / slow %.1f%s\n"
          !last_good !last_total slo_cycles (Slo.attainment_pct slo)
          (Slo.budget_remaining_pct slo)
          (Slo.burn_rate slo ~windows:obj.Slo.fast_windows)
          (Slo.burn_rate slo ~windows:obj.Slo.slow_windows)
          (match List.length (Slo.alerts slo) with
          | 0 -> ""
          | k -> Printf.sprintf ", %d burn alerts" k)
    end
  in
  (* The machine-readable view of the final frame: same counters, same
     Export string/float conventions as every BENCH_* artifact, so the
     CI gates can jq it without a scrape. *)
  let render_json now =
    let b = Buffer.create 1024 in
    Buffer.add_string b "{\"cycle\":";
    Buffer.add_string b (string_of_int now);
    Buffer.add_string b ",\"scenario\":";
    Export.buf_add_json_string b service;
    Buffer.add_string b ",\"frames\":";
    Buffer.add_string b (string_of_int !frames);
    Buffer.add_string b ",\"tiles\":[";
    let first = ref true in
    for t = 0 to n - 1 do
      match blocks.(t) with
      | None -> ()
      | Some p ->
        if not !first then Buffer.add_char b ',';
        first := false;
        let r slot = Perf.read p slot in
        Buffer.add_string b "{\"tile\":";
        Buffer.add_string b (string_of_int t);
        Buffer.add_string b ",\"behavior\":";
        Export.buf_add_json_string b
          (Monitor.behavior_name (Kernel.monitor kernel t));
        List.iter
          (fun (k, v) ->
            Buffer.add_string b ",\"";
            Buffer.add_string b k;
            Buffer.add_string b "\":";
            Buffer.add_string b (string_of_int v))
          [
            ("msgs_in", r Perf.msgs_in); ("msgs_out", r Perf.msgs_out);
            ("syscalls", r Perf.syscalls); ("denials", r Perf.denials);
            ("drops", r Perf.drops); ("nacks", r Perf.nacks);
            ("faults", r Perf.faults); ("heartbeats", r Perf.heartbeats);
          ];
        Buffer.add_char b '}'
    done;
    Buffer.add_string b "],\"board\":";
    (match blocks.(n) with
    | None -> Buffer.add_string b "null"
    | Some p ->
      let flits = Perf.read p Perf.flits in
      let busy = Perf.read p Perf.busy in
      Buffer.add_string b "{\"flits\":";
      Buffer.add_string b (string_of_int flits);
      Buffer.add_string b ",\"flits_per_cycle\":";
      Export.buf_add_float b (float_of_int flits /. float_of_int (max 1 now));
      Buffer.add_string b ",\"credit_stalls\":";
      Buffer.add_string b (string_of_int (Perf.read p Perf.credit_stalls));
      Buffer.add_string b ",\"occ_peak\":";
      Buffer.add_string b (string_of_int (Perf.read p Perf.occ_peak));
      Buffer.add_string b ",\"busy_cycles\":";
      Buffer.add_string b (string_of_int busy);
      Buffer.add_string b ",\"router_util_pct\":";
      Export.buf_add_float b
        (100.0 *. float_of_int busy /. float_of_int (max 1 (now * n)));
      Buffer.add_char b '}');
    let obj = Slo.objective slo in
    Buffer.add_string b ",\"slo\":{\"latency_cycles\":";
    Buffer.add_string b (string_of_int slo_cycles);
    Buffer.add_string b ",\"good\":";
    Buffer.add_string b (string_of_int !last_good);
    Buffer.add_string b ",\"total\":";
    Buffer.add_string b (string_of_int !last_total);
    Buffer.add_string b ",\"attainment_pct\":";
    Export.buf_add_float b (Slo.attainment_pct slo);
    Buffer.add_string b ",\"budget_remaining_pct\":";
    Export.buf_add_float b (Slo.budget_remaining_pct slo);
    Buffer.add_string b ",\"burn_fast\":";
    Export.buf_add_float b (Slo.burn_rate slo ~windows:obj.Slo.fast_windows);
    Buffer.add_string b ",\"burn_slow\":";
    Export.buf_add_float b (Slo.burn_rate slo ~windows:obj.Slo.slow_windows);
    Buffer.add_string b ",\"alerts\":";
    Buffer.add_string b (string_of_int (List.length (Slo.alerts slo)));
    Buffer.add_string b "}}\n";
    print_string (Buffer.contents b)
  in
  Kernel.install kernel ~tile:reader_tile
    (Apiary_core.Shell.behavior "top" ~on_boot:(fun sh ->
         let module Shell = Apiary_core.Shell in
         Sim.after (Shell.sim sh) 2_000 (fun () ->
             Shell.connect sh ~service:Statsvc.service_name (fun r ->
                 match r with
                 | Error _ -> ()
                 | Ok conn ->
                   (* One query at a time: a polite reader stays inside
                      its monitor's rate budget at any interval. *)
                   let rec fire qs =
                     match qs with
                     | [] ->
                       if not once then render (Shell.now sh);
                       Sim.after (Shell.sim sh) interval refresh
                     | (q, slot) :: rest ->
                       Shell.request sh conn ~opcode:Statsvc.opcode
                         (Statsvc.encode_query q) (fun r ->
                           (match r with
                           | Ok m ->
                             blocks.(slot) <-
                               Perf.decode m.Apiary_core.Message.payload
                           | Error _ -> ());
                           fire rest)
                   and refresh () =
                     fire
                       (List.init n (fun t -> (Statsvc.Tile t, t))
                       @ [ (Statsvc.Board, n) ])
                   in
                   refresh ()))));
  let cs =
    List.init clients (fun idx ->
        let c = Board.client board ~port:(idx + 1) () in
        Sim.after sim (2_000 + (idx * 71)) (fun () ->
            Client.start_closed c { Client.service; op; gen } ~concurrency:4);
        c)
  in
  cs_ref := cs;
  Sim.run_for sim cycles;
  List.iter Client.stop cs;
  if once then render cycles;
  if !frames = 0 then begin
    Printf.printf "top: no frames collected (cycles too short?)\n";
    1
  end
  else begin
    if json then render_json cycles;
    0
  end

(* ------------------------------------------------------------------ *)
(* noc *)

let pattern_conv =
  let parse = function
    | "uniform" -> Ok `Uniform
    | "hotspot" -> Ok `Hotspot
    | "transpose" -> Ok `Transpose
    | "neighbor" -> Ok `Neighbor
    | s -> Error (`Msg (Printf.sprintf "unknown pattern %S" s))
  in
  let print ppf p =
    Format.pp_print_string ppf
      (match p with
      | `Uniform -> "uniform"
      | `Hotspot -> "hotspot"
      | `Transpose -> "transpose"
      | `Neighbor -> "neighbor")
  in
  Arg.conv (parse, print)

let noc_cmd pattern rate cols rows payload cycles qos seed =
  let sim = Sim.create () in
  let mesh : int Mesh.t =
    Mesh.create sim { Mesh.default_config with Mesh.cols; rows; qos }
  in
  let pattern =
    match pattern with
    | `Uniform -> Traffic.Uniform
    | `Hotspot -> Traffic.Hotspot (Coord.make (cols / 2) (rows / 2), 0.5)
    | `Transpose -> Traffic.Transpose
    | `Neighbor -> Traffic.Neighbor
  in
  let rng = Rng.create ~seed in
  let gen =
    Traffic.start mesh ~rng ~pattern ~rate ~payload_bytes:payload ~payload:0 ()
  in
  Sim.run_for sim cycles;
  Traffic.stop_gen gen;
  Sim.run_for sim (cycles / 4);
  Printf.printf "pattern=%s rate=%.3f mesh=%dx%d payload=%dB\n"
    (Traffic.pattern_to_string pattern)
    rate cols rows payload;
  Printf.printf "offered=%d delivered=%d (%.1f%%)\n" (Traffic.offered gen)
    (Mesh.packets_delivered mesh)
    (100.0
    *. float_of_int (Mesh.packets_delivered mesh)
    /. float_of_int (max 1 (Traffic.offered gen)));
  percentiles "packet latency" (Mesh.latency mesh);
  Printf.printf "flits routed: %d (%.3f flits/cycle/router)\n"
    (Mesh.flits_routed mesh)
    (float_of_int (Mesh.flits_routed mesh)
    /. float_of_int (cycles * cols * rows));
  0

(* ------------------------------------------------------------------ *)
(* area *)

let area_cmd part tiles cap_entries flit_bits =
  match Parts.find part with
  | None ->
    Printf.eprintf "unknown part %S; known: %s\n" part
      (String.concat ", " (List.map (fun p -> p.Parts.name) Parts.all));
    1
  | Some part ->
    let noc = { Area.vcs = 2; depth = 4; flit_bits } in
    Printf.printf "part %s: %d logic cells\n" part.Parts.name part.Parts.logic_cells;
    let per_tile = Area.per_tile noc ~cap_entries in
    Format.printf "per-tile OS hardware: %a@." Area.pp per_tile;
    (match Floorplan.plan ~part ~tiles ~noc ~cap_entries with
    | Some p -> Format.printf "%a@." Floorplan.pp_plan p
    | None -> Printf.printf "the OS alone does not fit at %d tiles\n" tiles);
    Printf.printf "max tiles with 64 kc slots: %d\n"
      (Floorplan.max_tiles ~part ~noc ~cap_entries ~min_slot_cells:64_000);
    0

(* ------------------------------------------------------------------ *)
(* sched *)

module Cluster = Apiary_cluster.Cluster
module Shard_client = Apiary_cluster.Shard_client
module Rack_health = Apiary_cluster.Rack_health
module Sched = Apiary_sched.Sched
module Placer = Apiary_sched.Placer

(* A compact multi-tenant rack under the elastic scheduler: three echo
   tenants (a diurnal "web", a big-part-only "ml", a flash-crowd
   "burst") share --boards boards, the scheduler places/migrates/
   autoscales, and the decision log lands in --decisions-out. With
   --kill, a board serving web is downed mid-run and the watchdog alarm
   path re-places its tenants. The run is deterministic. The same demo
   backs `apiary slo`, which reports the tenants' error budgets and
   burn-rate alerts instead of the placement table. *)

let run_sched_demo ?(echo = true) ~boards ~cycles ~kill () =
  begin
    let sim = Sim.create () in
    let cluster = Cluster.create sim ~boards ~client_ports:5 in
    let noc = { Area.vcs = 2; depth = 4; flit_bits = 32 } in
    let slot_of part =
      match Floorplan.plan ~part ~tiles:16 ~noc ~cap_entries:16 with
      | Some p -> p.Floorplan.slot_logic_cells
      | None -> failwith "sched: OS exceeds part"
    in
    let big = slot_of Parts.vu9p and small = slot_of Parts.xc7v585t in
    let slot_cells b = if b < 2 then big else small in
    let mk name ~cells ~state ~bits ~max ~slo ~cap =
      {
        Placer.name;
        cells;
        state_bytes = state;
        bitstream_bytes = bits;
        reservation = 1;
        max_replicas = max;
        slo_cycles = slo;
        capacity_hint = cap;
      }
    in
    let specs =
      [
        mk "web" ~cells:(small / 2) ~state:4_096 ~bits:16_384 ~max:3 ~slo:5_000
          ~cap:66;
        mk "ml"
          ~cells:((big + small) / 2)  (* only fits the big-part boards *)
          ~state:65_536 ~bits:131_072 ~max:2 ~slo:25_000 ~cap:16;
        mk "burst" ~cells:(small / 3) ~state:2_048 ~bits:8_192 ~max:2 ~slo:5_000
          ~cap:66;
      ]
    in
    let behavior_of (s : Placer.tenant) () =
      Accels.echo ~service:s.Placer.name
        ~cost:(if s.Placer.name = "ml" then 1_200 else 300)
        ()
    in
    let cfg =
      {
        Sched.default_config with
        Sched.report_period = 4_000;
        hot_load = 30;
        cold_load = 12;
        cooldown = 60_000;
      }
    in
    let sched = Sched.create ~config:cfg cluster ~slot_cells in
    List.iter
      (fun s -> Sched.add_tenant sched ~spec:s ~behavior:(behavior_of s))
      specs;
    let clients =
      List.map
        (fun (s : Placer.tenant) ->
          let c =
            Shard_client.create cluster ~timeout:20_000 ~service:s.Placer.name
              ~op:Accels.op_echo ~route:Shard_client.Round_robin
              ~gen:(fun _ -> ("", Bytes.make 64 'x'))
          in
          Sched.watch sched ~tenant:s.Placer.name c;
          (s, c))
        specs
    in
    Sched.start sched;
    Sched.register_metrics sched;
    let health = Rack_health.create cluster in
    let client name = List.assq (List.find (fun s -> s.Placer.name = name) specs) clients in
    let ramp name at extra =
      Sim.after sim at (fun () ->
          Shard_client.start (client name) ~concurrency:extra)
    in
    let ramp_down name at restart =
      Sim.after sim at (fun () ->
          Shard_client.stop (client name);
          Sim.after sim 6_000 (fun () ->
              Shard_client.start (client name) ~concurrency:restart))
    in
    ramp "web" 3_000 6;
    ramp "ml" 3_100 3;
    ramp "burst" 3_200 2;
    ramp "web" (cycles / 3) 12;
    ramp_down "web" (2 * cycles / 3) 2;
    ramp "burst" (cycles / 2) 16;
    ramp_down "burst" ((cycles / 2) + (cycles / 6)) 1;
    let victim = ref (-1) in
    if kill then
      Sim.after sim (cycles / 2) (fun () ->
          match Sched.placement sched ~tenant:"web" with
          | b :: _ ->
            victim := b;
            if echo then
              Printf.printf "[%8d] kill board %d (serving web)\n" (Sim.now sim)
                b;
            Cluster.kill cluster ~board:b
          | [] -> ());
    Sim.run_for sim cycles;
    List.iter (fun (_, c) -> Shard_client.stop c) clients;
    (sched, clients, health, !victim)
  end

let sched_cmd boards cycles kill decisions_out =
  if boards < 2 then begin
    Printf.eprintf "sched: need at least 2 boards\n";
    1
  end
  else begin
    let sched, clients, health, victim =
      run_sched_demo ~boards ~cycles ~kill ()
    in
    Printf.printf "%-6s %10s %8s %6s %9s %9s\n" "tenant" "completed" "slo%"
      "repl" "failovers" "retries";
    List.iter
      (fun ((s : Placer.tenant), c) ->
        let lat = Shard_client.latency c in
        let nl = Stats.Histogram.count lat in
        let ok = Stats.Histogram.count_le lat s.Placer.slo_cycles in
        Printf.printf "%-6s %10d %7.1f%% %6d %9d %9d\n" s.Placer.name
          (Shard_client.completed c)
          (if nl = 0 then 100.0
           else 100.0 *. float_of_int ok /. float_of_int nl)
          (Sched.replicas sched ~tenant:s.Placer.name)
          (Shard_client.failovers c) (Shard_client.errors c))
      clients;
    let t = Sched.totals sched in
    Printf.printf
      "decisions: %d placements, %d migrations, %d/%d scale up/down, %d \
       deferred, %d replaced\n"
      t.Sched.placements t.Sched.migrations t.Sched.scale_ups
      t.Sched.scale_downs t.Sched.deferred t.Sched.replaced;
    if kill && victim >= 0 then
      (match List.find_opt (fun (_, b) -> b = victim) (Rack_health.detections health) with
      | Some (cyc, b) ->
        Printf.printf "watchdog: board %d declared down at cycle %d\n" b cyc
      | None -> Printf.printf "watchdog: kill not detected (run too short?)\n");
    let oc = open_out decisions_out in
    output_string oc (Sched.decisions_json sched);
    close_out oc;
    Printf.printf "decision log -> %s\n" decisions_out;
    0
  end

(* ------------------------------------------------------------------ *)
(* slo *)

let slo_cmd boards cycles kill json report_out =
  if boards < 2 then begin
    Printf.eprintf "slo: need at least 2 boards\n";
    1
  end
  else begin
    let sched, clients, _health, _victim =
      run_sched_demo ~echo:(not json) ~boards ~cycles ~kill ()
    in
    if json then begin
      (* One byte-stable document on stdout (Export conventions), jq-able
         without scraping; the report file is written either way. *)
      let b = Buffer.create 1024 in
      Buffer.add_string b "{\"cycles\":";
      Buffer.add_string b (string_of_int cycles);
      Buffer.add_string b ",\"tenants\":[";
      List.iteri
        (fun i ((s : Placer.tenant), _) ->
          if i > 0 then Buffer.add_char b ',';
          let t = Sched.slo sched ~tenant:s.Placer.name in
          let obj = Slo.objective t in
          Buffer.add_string b "{\"tenant\":";
          Export.buf_add_json_string b s.Placer.name;
          Buffer.add_string b ",\"target_pct\":";
          Export.buf_add_float b obj.Slo.target_pct;
          Buffer.add_string b ",\"good\":";
          Buffer.add_string b (string_of_int (Slo.good_total t));
          Buffer.add_string b ",\"bad\":";
          Buffer.add_string b (string_of_int (Slo.bad_total t));
          Buffer.add_string b ",\"attainment_pct\":";
          Export.buf_add_float b (Slo.attainment_pct t);
          Buffer.add_string b ",\"budget_remaining_pct\":";
          Export.buf_add_float b (Slo.budget_remaining_pct t);
          Buffer.add_string b ",\"burn_fast\":";
          Export.buf_add_float b
            (Slo.burn_rate t ~windows:obj.Slo.fast_windows);
          Buffer.add_string b ",\"burn_slow\":";
          Export.buf_add_float b
            (Slo.burn_rate t ~windows:obj.Slo.slow_windows);
          Buffer.add_string b ",\"alerts\":[";
          List.iteri
            (fun j (a : Slo.alert) ->
              if j > 0 then Buffer.add_char b ',';
              Buffer.add_string b "{\"cycle\":";
              Buffer.add_string b (string_of_int a.Slo.a_cycle);
              Buffer.add_string b ",\"severity\":";
              Export.buf_add_json_string b
                (Slo.severity_to_string a.Slo.a_severity);
              Buffer.add_string b ",\"burn_fast\":";
              Export.buf_add_float b a.Slo.a_burn_fast;
              Buffer.add_string b ",\"burn_slow\":";
              Export.buf_add_float b a.Slo.a_burn_slow;
              Buffer.add_char b '}')
            (Slo.alerts t);
          Buffer.add_string b "]}")
        clients;
      Buffer.add_string b "]}\n";
      print_string (Buffer.contents b)
    end
    else begin
      Printf.printf "%-6s %7s %10s %6s %8s %7s %6s %6s %7s\n" "tenant" "target"
        "good" "bad" "attain%" "budget%" "fast" "slow" "alerts";
      List.iter
        (fun ((s : Placer.tenant), _) ->
          let t = Sched.slo sched ~tenant:s.Placer.name in
          let obj = Slo.objective t in
          Printf.printf "%-6s %6.1f%% %10d %6d %8.1f %7.1f %6.1f %6.1f %7d\n"
            s.Placer.name obj.Slo.target_pct (Slo.good_total t)
            (Slo.bad_total t) (Slo.attainment_pct t)
            (Slo.budget_remaining_pct t)
            (Slo.burn_rate t ~windows:obj.Slo.fast_windows)
            (Slo.burn_rate t ~windows:obj.Slo.slow_windows)
            (List.length (Slo.alerts t)))
        clients;
      List.iter
        (fun ((s : Placer.tenant), _) ->
          let t = Sched.slo sched ~tenant:s.Placer.name in
          List.iter
            (fun (a : Slo.alert) ->
              Printf.printf
                "alert: [%8d] %-6s %-6s burn fast %.1f / slow %.1f\n"
                a.Slo.a_cycle s.Placer.name
                (Slo.severity_to_string a.Slo.a_severity)
                a.Slo.a_burn_fast a.Slo.a_burn_slow)
            (Slo.alerts t))
        clients
    end;
    Sched.write_slo_report sched report_out;
    if not json then Printf.printf "slo report -> %s\n" report_out;
    0
  end

(* ------------------------------------------------------------------ *)
(* cmdliner plumbing *)

let seed_arg =
  Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Deterministic RNG seed.")

let run_term =
  let scenario =
    Arg.(value & opt scenario_conv Echo & info [ "scenario"; "s" ]
           ~doc:"Scenario: echo, kv or vpipe.")
  in
  let cycles =
    Arg.(value & opt int 200_000 & info [ "cycles" ] ~doc:"Cycles to simulate.")
  in
  let clients =
    Arg.(value & opt int 2 & info [ "clients" ] ~doc:"Client hosts on the switch.")
  in
  let enforce =
    Arg.(value & opt bool true & info [ "enforce" ]
           ~doc:"Capability enforcement + rate limiting.")
  in
  let trace =
    Arg.(value & flag & info [ "trace" ] ~doc:"Record and dump the message trace.")
  in
  Term.(const run_cmd $ scenario $ cycles $ clients $ enforce $ trace $ seed_arg)

let run_cmd_info = Cmd.info "run" ~doc:"Run a board scenario with network clients"

let obs_term =
  let scenario =
    Arg.(value & opt scenario_conv Kv_scenario & info [ "scenario"; "s" ]
           ~doc:"Scenario: echo, kv or vpipe.")
  in
  let cycles =
    Arg.(value & opt int 200_000 & info [ "cycles" ] ~doc:"Cycles to simulate.")
  in
  let clients =
    Arg.(value & opt int 2 & info [ "clients" ] ~doc:"Client hosts on the switch.")
  in
  let trace_out =
    Arg.(value & opt string "obs_trace.json" & info [ "trace-out" ]
           ~doc:"Chrome trace_event output path (open in Perfetto).")
  in
  let metrics_out =
    Arg.(value & opt string "obs_metrics.json" & info [ "metrics-out" ]
           ~doc:"Metrics registry snapshot output path.")
  in
  Term.(const obs_cmd $ scenario $ cycles $ clients $ seed_arg $ trace_out
        $ metrics_out)

let obs_cmd_info =
  Cmd.info "obs"
    ~doc:"Run a scenario with telemetry on: span trace + metrics snapshot"

let top_term =
  let scenario =
    Arg.(value & opt scenario_conv Kv_scenario & info [ "scenario"; "s" ]
           ~doc:"Scenario: echo, kv or vpipe.")
  in
  let cycles =
    Arg.(value & opt int 200_000 & info [ "cycles" ] ~doc:"Cycles to simulate.")
  in
  let clients =
    Arg.(value & opt int 2 & info [ "clients" ] ~doc:"Client hosts on the switch.")
  in
  let interval =
    Arg.(value & opt int 20_000 & info [ "interval" ]
           ~doc:"Cycles between counter refreshes.")
  in
  let once =
    Arg.(value & flag & info [ "once" ]
           ~doc:"Render only the final frame (batch/CI mode).")
  in
  let json =
    Arg.(value & flag & info [ "json" ]
           ~doc:"Emit the final frame as one byte-stable JSON object \
                 instead of the live view.")
  in
  let slo_cycles =
    Arg.(value & opt int 5_000 & info [ "slo-cycles" ]
           ~doc:"Latency bound the slo row judges requests against.")
  in
  Term.(const top_cmd $ scenario $ cycles $ clients $ interval $ once $ json
        $ seed_arg $ slo_cycles)

let top_cmd_info =
  Cmd.info "top"
    ~doc:"Live per-tile counter view, read in-band through the stat service"

let noc_term =
  let pattern =
    Arg.(value & opt pattern_conv `Uniform & info [ "pattern" ]
           ~doc:"uniform, hotspot, transpose or neighbor.")
  in
  let rate =
    Arg.(value & opt float 0.02 & info [ "rate" ] ~doc:"Packets/tile/cycle.")
  in
  let cols = Arg.(value & opt int 4 & info [ "cols" ] ~doc:"Mesh columns.") in
  let rows = Arg.(value & opt int 4 & info [ "rows" ] ~doc:"Mesh rows.") in
  let payload = Arg.(value & opt int 32 & info [ "payload" ] ~doc:"Payload bytes.") in
  let cycles = Arg.(value & opt int 50_000 & info [ "cycles" ] ~doc:"Cycles.") in
  let qos = Arg.(value & flag & info [ "qos" ] ~doc:"Class-priority arbitration.") in
  Term.(const noc_cmd $ pattern $ rate $ cols $ rows $ payload $ cycles $ qos $ seed_arg)

let noc_cmd_info = Cmd.info "noc" ~doc:"Characterize the NoC with synthetic traffic"

let area_term =
  let part =
    Arg.(value & opt string "VU9P" & info [ "part" ] ~doc:"FPGA part name.")
  in
  let tiles = Arg.(value & opt int 16 & info [ "tiles" ] ~doc:"Tile count.") in
  let caps =
    Arg.(value & opt int 256 & info [ "caps" ] ~doc:"Capability table entries.")
  in
  let flits =
    Arg.(value & opt int 128 & info [ "flit-bits" ] ~doc:"Flit width in bits.")
  in
  Term.(const area_cmd $ part $ tiles $ caps $ flits)

let area_cmd_info = Cmd.info "area" ~doc:"Resource model: OS footprint on a part"

let sched_term =
  let boards =
    Arg.(value & opt int 4 & info [ "boards" ] ~doc:"Boards in the rack.")
  in
  let cycles =
    Arg.(value & opt int 400_000 & info [ "cycles" ] ~doc:"Cycles to simulate.")
  in
  let kill =
    Arg.(value & flag & info [ "kill" ]
           ~doc:"Down a board serving the web tenant mid-run (failure drill).")
  in
  let decisions_out =
    Arg.(value & opt string "sched_decisions.json" & info [ "decisions-out" ]
           ~doc:"Decision log output path (JSON array).")
  in
  Term.(const sched_cmd $ boards $ cycles $ kill $ decisions_out)

let sched_cmd_info =
  Cmd.info "sched"
    ~doc:"Elastic multi-tenant scheduler: place, migrate, autoscale a rack"

let slo_term =
  let boards =
    Arg.(value & opt int 4 & info [ "boards" ] ~doc:"Boards in the rack.")
  in
  let cycles =
    Arg.(value & opt int 400_000 & info [ "cycles" ] ~doc:"Cycles to simulate.")
  in
  let kill =
    Arg.(value & flag & info [ "kill" ]
           ~doc:"Down a board serving the web tenant mid-run (failure drill).")
  in
  let json =
    Arg.(value & flag & info [ "json" ]
           ~doc:"Emit one byte-stable JSON document on stdout instead of \
                 the tables.")
  in
  let report_out =
    Arg.(value & opt string "slo_report.json" & info [ "report-out" ]
           ~doc:"Per-tenant SLO report output path (JSON).")
  in
  Term.(const slo_cmd $ boards $ cycles $ kill $ json $ report_out)

let slo_cmd_info =
  Cmd.info "slo"
    ~doc:"Per-tenant error budgets and burn-rate alerts for the sched demo rack"

let () =
  let doc = "Apiary: a microkernel OS for direct-attached FPGAs (simulated)" in
  let info = Cmd.info "apiary" ~version:"0.1.0" ~doc in
  let default = Term.(ret (const (`Help (`Pager, None)))) in
  exit
    (Cmd.eval'
       (Cmd.group ~default info
          [
            Cmd.v run_cmd_info run_term;
            Cmd.v obs_cmd_info obs_term;
            Cmd.v top_cmd_info top_term;
            Cmd.v noc_cmd_info noc_term;
            Cmd.v area_cmd_info area_term;
            Cmd.v sched_cmd_info sched_term;
            Cmd.v slo_cmd_info slo_term;
          ]))
