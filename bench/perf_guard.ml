(* CI perf-regression guard.

     perf_guard.exe BENCH_baseline.json BENCH_perf.json

   Fails (exit 1) when any experiment present in both files has a
   [cycles_per_s] below [0.7 * APIARY_PERF_FACTOR] of its baseline.
   APIARY_PERF_FACTOR (default 1.0) discounts the baseline for slower
   machines — CI runners set it well below 1 so only real regressions,
   not hardware variance, trip the guard. Entries with [sim_cycles = 0]
   are skipped (sub-second experiments whose rate is pure noise), as are
   experiments present in only one file.

   A second, machine-independent check guards the activity-set
   scheduler: [active_ticks] (ticker invocations actually executed) is a
   deterministic function of the workload, so when baseline and current
   ran the same [sim_cycles] the current count may not exceed the
   baseline by more than 10% + 1000 calls. A regression here means
   tickers stopped parking (idle-skipping broke) even if the wall-clock
   guard still passes on a fast runner. Skipped when either side lacks
   the field (old baselines) or the cycle counts differ (resized runs).

   The parser handles exactly the format bench_util.write_perf_json
   emits — one record per line — not general JSON; both inputs come
   from our own harness. *)

type rec_t = {
  id : string;
  sim_cycles : int;
  cycles_per_s : float;
  active_ticks : int option;
}

let field_str line key =
  let pat = Printf.sprintf "\"%s\": \"" key in
  match String.index_opt line '{' with
  | None -> None
  | Some _ -> (
    let plen = String.length pat in
    let rec find i =
      if i + plen > String.length line then None
      else if String.sub line i plen = pat then
        let start = i + plen in
        String.index_from_opt line start '"'
        |> Option.map (fun e -> String.sub line start (e - start))
      else find (i + 1)
    in
    find 0)

let field_num line key =
  let pat = Printf.sprintf "\"%s\": " key in
  let plen = String.length pat in
  let rec find i =
    if i + plen > String.length line then None
    else if String.sub line i plen = pat then begin
      let start = i + plen in
      let j = ref start in
      while
        !j < String.length line
        && (match line.[!j] with
           | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
           | _ -> false)
      do
        incr j
      done;
      float_of_string_opt (String.sub line start (!j - start))
    end
    else find (i + 1)
  in
  find 0

let parse path =
  let ic = open_in path in
  let out = ref [] in
  (try
     while true do
       let line = input_line ic in
       match field_str line "id" with
       | None -> ()
       | Some id ->
         let sim_cycles =
           int_of_float (Option.value ~default:0.0 (field_num line "sim_cycles"))
         in
         let cycles_per_s =
           Option.value ~default:0.0 (field_num line "cycles_per_s")
         in
         let active_ticks =
           Option.map int_of_float (field_num line "active_ticks")
         in
         out := { id; sim_cycles; cycles_per_s; active_ticks } :: !out
     done
   with End_of_file -> ());
  close_in ic;
  List.rev !out

let () =
  let baseline_path, current_path =
    match Sys.argv with
    | [| _; b; c |] -> (b, c)
    | _ ->
      prerr_endline "usage: perf_guard.exe BENCH_baseline.json BENCH_perf.json";
      exit 2
  in
  let factor =
    match Sys.getenv_opt "APIARY_PERF_FACTOR" with
    | Some s -> (try float_of_string s with _ -> 1.0)
    | None -> 1.0
  in
  let threshold = 0.7 *. factor in
  let baseline = parse baseline_path in
  let current = parse current_path in
  let failures = ref 0 in
  List.iter
    (fun b ->
      match List.find_opt (fun c -> c.id = b.id) current with
      | None -> Printf.printf "perf-guard: %-6s not in current run, skipped\n" b.id
      | Some _ when b.sim_cycles = 0 ->
        Printf.printf "perf-guard: %-6s baseline has no simulated cycles, skipped\n"
          b.id
      | Some c when c.sim_cycles = 0 ->
        Printf.printf "perf-guard: %-6s current run has no simulated cycles, skipped\n"
          b.id
      | Some c ->
        let floor = threshold *. b.cycles_per_s in
        let verdict = if c.cycles_per_s >= floor then "ok" else "REGRESSION" in
        Printf.printf
          "perf-guard: %-6s %s  baseline %.2e cyc/s, current %.2e, floor %.2e (x%.2f)\n"
          b.id verdict b.cycles_per_s c.cycles_per_s floor threshold;
        if c.cycles_per_s < floor then incr failures;
        (* Deterministic activity guard: same simulated span must not
           execute meaningfully more ticker calls than the baseline. *)
        (match (b.active_ticks, c.active_ticks) with
        | Some ba, Some ca when b.sim_cycles = c.sim_cycles ->
          let cap = ba + (ba / 10) + 1000 in
          if ca > cap then begin
            Printf.printf
              "perf-guard: %-6s ACTIVITY REGRESSION  baseline %d active ticks, \
               current %d (cap %d)\n"
              b.id ba ca cap;
            incr failures
          end
          else
            Printf.printf
              "perf-guard: %-6s activity ok  baseline %d active ticks, current \
               %d (cap %d)\n"
              b.id ba ca cap
        | _ -> ()))
    baseline;
  if !failures > 0 then begin
    Printf.printf "perf-guard: %d experiment(s) regressed >%.0f%% below baseline\n"
      !failures
      ((1.0 -. threshold) *. 100.0);
    exit 1
  end
  else print_endline "perf-guard: no regressions"
