(* E13 — in-fabric introspection: what does it cost to watch a live
   fabric from inside, and what does watching buy you?

   - e13a: the stat service is an ordinary capability-gated tile, so
     reading counters steals fabric bandwidth from the workload —
     measure a closed-loop echo workload while an in-fabric reader
     polls board-wide counters at increasing rates.
   - e13b: failure detection. The same 4-board kill drill as E12d run
     twice: once with PR 2's client-side request timeouts as the only
     detector, once with the rack heartbeat watchdog feeding
     Cluster.on_board_down so clients reshard and reissue immediately.
   - e13c: the fault flight recorder. Inject a fail-stop mid-workload,
     dump the board's ring as postmortem JSON, and check the tail of
     the story it tells.

   With --obs, additionally attributes request latency to queue-wait /
   hop / service time over the span trees (Critical_path) for a
   fixed-seed KV run. APIARY_E13_SMALL=1 shrinks durations for CI. *)

module Sim = Apiary_engine.Sim
module Stats = Apiary_engine.Stats
module Shell = Apiary_core.Shell
module Kernel = Apiary_core.Kernel
module Monitor = Apiary_core.Monitor
module Mesh = Apiary_noc.Mesh
module Statsvc = Apiary_core.Statsvc
module Kv = Apiary_accel.Kv
module Accels = Apiary_accel.Accels
module Perf = Apiary_obs.Perf
module Flight = Apiary_obs.Flight
module Span = Apiary_obs.Span
module Critical_path = Apiary_obs.Critical_path
module Cluster = Apiary_cluster.Cluster
module Rack_health = Apiary_cluster.Rack_health
module Shard_client = Apiary_cluster.Shard_client
open Bench_util

let small () = Sys.getenv_opt "APIARY_E13_SMALL" <> None
let bytes_of n = Bytes.make n 'x'

let mk_kernel () =
  let sim = Sim.create () in
  let cfg =
    {
      Kernel.default_config with
      Kernel.mem_tile = 15;
      dram_bytes = 4 * 1024 * 1024;
    }
  in
  (sim, Kernel.create sim cfg)

(* ------------------------------------------------------------------ *)
(* E13a — counter-read overhead. Echo workload on one tile, the stat
   service on another, and a reader tile polling the (most expensive)
   board-wide query every [read_period] cycles; 0 = no reader. *)

let e13a_run ~read_period ~duration =
  let sim, k = mk_kernel () in
  Kernel.install k ~tile:5 (Accels.echo ~cost:4 ());
  ignore (Statsvc.install k ~tile:6);
  let ops = ref 0 in
  Kernel.install k ~tile:1
    (Shell.behavior "driver" ~on_boot:(fun sh ->
         Sim.after (Shell.sim sh) 2_000 (fun () ->
             Shell.connect sh ~service:"echo" (fun r ->
                 match r with
                 | Error _ -> ()
                 | Ok conn ->
                   let rec go () =
                     Shell.request sh conn ~opcode:Accels.op_echo (bytes_of 32)
                       (fun _ ->
                         incr ops;
                         go ())
                   in
                   go ()))));
  let reads = ref 0 and bad = ref 0 in
  let read_lat = Stats.Histogram.create "e13a_read" in
  if read_period > 0 then
    Kernel.install k ~tile:2
      (Shell.behavior "reader" ~on_boot:(fun sh ->
           Sim.after (Shell.sim sh) 2_000 (fun () ->
               Shell.connect sh ~service:Statsvc.service_name (fun r ->
                   match r with
                   | Error _ -> ()
                   | Ok conn ->
                     let rec go () =
                       let t0 = Shell.now sh in
                       Shell.request sh conn ~opcode:Statsvc.opcode
                         (Statsvc.encode_query Statsvc.Board) (fun r ->
                           (match r with
                           | Ok m -> (
                             Stats.Histogram.record read_lat (Shell.now sh - t0);
                             incr reads;
                             match Perf.decode m.Apiary_core.Message.payload with
                             | Some _ -> ()
                             | None -> incr bad)
                           | Error _ -> incr bad);
                           Sim.after (Shell.sim sh) read_period go)
                     in
                     go ()))));
  Sim.run_for sim duration;
  (!ops, !reads, !bad, p50 read_lat, p99 read_lat)

(* ------------------------------------------------------------------ *)
(* E13b — timeout-driven vs alarm-driven failover. The E12d drill
   (kill one of four boards, no restore) with the recovery window —
   kill to first bucket back at >=90% of pre-kill throughput — as the
   figure of merit. [`Timeout] is PR 2's baseline; [`Watchdog] adds
   the rack heartbeat monitor. *)

let e13b_run ~detector ~duration ~kill_at ~interval =
  let boards = 4 and victim = 2 in
  let sim = Sim.create () in
  let cluster = Cluster.create sim ~boards ~client_ports:4 in
  for b = 0 to boards - 1 do
    ignore
      (Cluster.install cluster ~board:b ~service:"kv" (fst (Kv.behavior ())))
  done;
  let watchdog =
    match detector with
    | `Timeout -> None
    | `Watchdog -> Some (Rack_health.create ~hb_period:500 ~deadline:3_000 cluster)
  in
  let series = Stats.Series.create "e13b" ~interval in
  let gen n =
    let key = Printf.sprintf "k%03d" (n mod 167) in
    let req =
      if n land 1 = 0 then Kv.Proto.Put (key, bytes_of 64) else Kv.Proto.Get key
    in
    (key, Kv.Proto.encode_req req)
  in
  let clients =
    List.init 2 (fun _ ->
        Shard_client.create cluster ~timeout:20_000 ~service:"kv"
          ~op:Kv.Proto.opcode ~route:Shard_client.By_key ~gen)
  in
  List.iter
    (fun c ->
      Shard_client.set_on_complete c (fun ~now ->
          Stats.Series.record series ~now 1.0))
    clients;
  Sim.after sim 3_000 (fun () ->
      List.iter (fun c -> Shard_client.start c ~concurrency:8) clients);
  Sim.after sim kill_at (fun () -> Cluster.kill cluster ~board:victim);
  Sim.run_for sim duration;
  List.iter Shard_client.stop clients;
  let buckets = Stats.Series.buckets series in
  let avg_over lo hi =
    match
      List.filter (fun (t, _) -> t >= lo && t + interval <= hi) buckets
    with
    | [] -> 0.0
    | sel ->
      List.fold_left (fun a (_, v) -> a +. v) 0.0 sel
      /. float_of_int (List.length sel)
  in
  let pre = avg_over (kill_at / 2) kill_at in
  let recovered_at =
    let rec scan = function
      | [] -> duration
      | (t, v) :: rest ->
        if t >= kill_at && v >= 0.9 *. pre then t else scan rest
    in
    scan buckets
  in
  let failovers =
    List.fold_left (fun a c -> a + Shard_client.failovers c) 0 clients
  in
  let detect =
    match watchdog with
    | None -> None
    | Some w -> (
      match List.find_opt (fun (_, b) -> b = victim) (Rack_health.detections w) with
      | Some (cyc, _) -> Some (cyc - kill_at)
      | None -> None)
  in
  (recovered_at - kill_at, failovers, detect)

(* ------------------------------------------------------------------ *)
(* E13c — flight-recorder fidelity. Arm the board's ring, run an echo
   workload into a tile that fail-stops itself on its 25th request, and
   dump the postmortem at the fault notification. *)

let e13c_postmortem = "BENCH_e13_postmortem.json"

let e13c_run () =
  let sim, k = mk_kernel () in
  Flight.set_enabled (Kernel.flight k) true;
  let served = ref 0 in
  Kernel.install k ~tile:5
    (Shell.behavior "victim"
       ~on_boot:(fun sh -> Shell.register_service sh "victim")
       ~on_message:(fun sh m ->
         incr served;
         if !served >= 25 then Shell.raise_fault sh "injected: deadbeef"
         else Shell.respond sh m ~opcode:Accels.op_echo m.Apiary_core.Message.payload));
  Kernel.install k ~tile:1
    (Shell.behavior "driver" ~on_boot:(fun sh ->
         Sim.after (Shell.sim sh) 2_000 (fun () ->
             Shell.connect sh ~service:"victim" (fun r ->
                 match r with
                 | Error _ -> ()
                 | Ok conn ->
                   let rec go () =
                     Shell.request sh conn ~opcode:Accels.op_echo (bytes_of 32)
                       (fun r -> match r with Ok _ -> go () | Error _ -> ())
                   in
                   go ()))));
  let dump = ref None in
  Kernel.on_fault k (fun tile reason ->
      if !dump = None then
        dump :=
          Some
            (Flight.dump_json (Kernel.flight k)
               ~reason:(Printf.sprintf "tile %d: %s" tile reason)
               ~cycle:(Sim.now sim)));
  Sim.run_for sim 60_000;
  let flight = Kernel.flight k in
  let entries = Flight.entries flight in
  let last_is_fault =
    match List.rev entries with
    | e :: _ -> e.Flight.cat = "monitor" && e.Flight.name = "fault"
    | [] -> false
  in
  (match !dump with
  | Some doc ->
    let oc = open_out e13c_postmortem in
    output_string oc doc;
    close_out oc
  | None -> ());
  ( !dump <> None,
    List.length entries,
    Flight.total flight,
    Flight.capacity flight,
    last_is_fault )

(* ------------------------------------------------------------------ *)
(* Critical-path attribution (--obs): where does a KV request's
   latency go? Fixed-seed single-board run with spans on; every
   completed RPC decomposes into queue-wait (NIC/monitor queues before
   the wire), hop (router traversals) and service (the far tile). *)

let e13_obs () =
  subhead "E13 critical-path attribution (--obs)";
  Span.reset ();
  Span.set_enabled true;
  let sim, k = mk_kernel () in
  Kernel.install k ~tile:5 (fst (Kv.behavior ()));
  let done_ = ref 0 in
  Kernel.install k ~tile:1
    (Shell.behavior "driver" ~on_boot:(fun sh ->
         Sim.after (Shell.sim sh) 2_000 (fun () ->
             Shell.connect sh ~service:"kv" (fun r ->
                 match r with
                 | Error _ -> ()
                 | Ok conn ->
                   let rec go n =
                     let key = Printf.sprintf "k%03d" (n mod 167) in
                     let req =
                       if n land 1 = 0 then Kv.Proto.Put (key, bytes_of 64)
                       else Kv.Proto.Get key
                     in
                     Shell.request sh conn ~opcode:Kv.Proto.opcode
                       (Kv.Proto.encode_req req) (fun _ ->
                         incr done_;
                         go (n + 1))
                   in
                   go 0))));
  Sim.run_for sim 80_000;
  Span.set_enabled false;
  let bds = Critical_path.analyze (Span.events ()) in
  let s = Critical_path.summarize bds in
  Printf.printf "%d ops, %d attributed request trees\n" !done_ s.Critical_path.n;
  let row name h =
    [ name; i (p50 h); f1 (us_of_cycles (p50 h)); i (p99 h);
      f1 (us_of_cycles (p99 h)) ]
  in
  table
    [ "component"; "p50 cyc"; "p50 us"; "p99 cyc"; "p99 us" ]
    [
      row "total (rpc)" s.Critical_path.h_total;
      row "queue-wait" s.Critical_path.h_queue;
      row "hops" s.Critical_path.h_hop;
      row "service" s.Critical_path.h_service;
    ];
  Span.reset ()

(* ------------------------------------------------------------------ *)

let e13 () =
  header "E13"
    "in-fabric introspection: stat service, watchdog failover, flight recorder";
  let sm = small () in

  subhead "E13a: board-wide counter reads vs workload throughput";
  let duration = if sm then 60_000 else 200_000 in
  let periods = [ 0; 2_000; 500; 100 ] in
  let results =
    List.map (fun p -> (p, e13a_run ~read_period:p ~duration)) periods
  in
  let base =
    match results with (_, (ops, _, _, _, _)) :: _ -> max 1 ops | [] -> 1
  in
  table
    [ "read period"; "echo ops"; "vs off"; "reads"; "bad"; "read p50 us";
      "read p99 us" ]
    (List.map
       (fun (p, (ops, reads, bad, r50, r99)) ->
         [
           (if p = 0 then "off" else i p);
           i ops;
           pct (float_of_int ops /. float_of_int base -. 1.0);
           i reads;
           i bad;
           f1 (us_of_cycles r50);
           f1 (us_of_cycles r99);
         ])
       results);
  Printf.printf
    "(the stat service is a tile like any other: polling the whole board\n\
    \ rides the same NoC and the same capability checks as the workload)\n";

  subhead "E13b: failover detection — request timeouts vs rack watchdog";
  let duration, kill_at, interval =
    if sm then (200_000, 80_000, 5_000) else (400_000, 150_000, 5_000)
  in
  let t_win, t_fo, _ = e13b_run ~detector:`Timeout ~duration ~kill_at ~interval in
  let w_win, w_fo, w_detect =
    e13b_run ~detector:`Watchdog ~duration ~kill_at ~interval
  in
  table
    [ "detector"; "detection"; "degraded window"; "window us"; "reissues" ]
    [
      [
        "request timeout (PR2 baseline)"; "20,000 cyc timeout"; commas t_win;
        f1 (us_of_cycles t_win); i t_fo;
      ];
      [
        "heartbeat watchdog";
        (match w_detect with
        | Some d -> commas d ^ " cyc after kill"
        | None -> "none");
        commas w_win; f1 (us_of_cycles w_win); i w_fo;
      ];
    ];
  Printf.printf
    "(the watchdog declares the board dead from missed heartbeats and\n\
    \ pushes Cluster.on_board_down: clients reshard and reissue in-flight\n\
    \ work at once instead of waiting out each request's timeout)\n";

  subhead "E13c: flight recorder — postmortem from an injected fail-stop";
  let dumped, retained, total, cap, last_is_fault = e13c_run () in
  table
    [ "dumped"; "events retained"; "events seen"; "ring cap"; "tail is fault" ]
    [
      [
        (if dumped then "yes -> " ^ e13c_postmortem else "no");
        i retained; i total; i cap;
        (if last_is_fault then "yes" else "NO");
      ];
    ];
  if !obs_enabled then e13_obs ()
