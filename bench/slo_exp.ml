(* E15 — what does watching cost? The observability ladder measured on
   one fixed workload: a closed-loop KV client against a single-board
   kernel, run four times with progressively more telemetry enabled:

     off              no spans, no series, no SLO accounting
     spans            span recorder on, every event kept (head_mod 1)
     spans sampled    corr-keyed head sampling (1/8) + tail keep rules
     sampled+series+slo  sampling plus a windowed latency series and a
                      per-tenant SLO object fed from every completion

   The simulated run must be byte-identical across rungs — spans,
   series and SLO accounting live outside the simulator, so ops (and
   every sim-derived number) cannot move. What moves is host-side cost:
   span-event allocation and windowed accounting. Wall time is printed
   only with --perf (it is machine-dependent; default output stays
   byte-stable). APIARY_E15_SMALL=1 shrinks the run for CI. *)

module Sim = Apiary_engine.Sim
module Shell = Apiary_core.Shell
module Kernel = Apiary_core.Kernel
module Kv = Apiary_accel.Kv
module Span = Apiary_obs.Span
module Series = Apiary_obs.Series
module Slo = Apiary_obs.Slo
open Bench_util

let small () = Sys.getenv_opt "APIARY_E15_SMALL" <> None
let bytes_of n = Bytes.make n 'x'

let mk_kernel () =
  let sim = Sim.create () in
  let cfg =
    {
      Kernel.default_config with
      Kernel.mem_tile = 15;
      dram_bytes = 4 * 1024 * 1024;
    }
  in
  (sim, Kernel.create sim cfg)

(* One rung: the fixed KV workload with a per-completion latency hook.
   Returns (ops, wall_ms). *)
let run_workload ~duration ~on_done =
  let sim, k = mk_kernel () in
  Kernel.install k ~tile:5 (fst (Kv.behavior ()));
  let ops = ref 0 in
  Kernel.install k ~tile:1
    (Shell.behavior "driver" ~on_boot:(fun sh ->
         Sim.after (Shell.sim sh) 2_000 (fun () ->
             Shell.connect sh ~service:"kv" (fun r ->
                 match r with
                 | Error _ -> ()
                 | Ok conn ->
                   let rec go n =
                     let key = Printf.sprintf "k%03d" (n mod 167) in
                     let req =
                       if n land 1 = 0 then Kv.Proto.Put (key, bytes_of 64)
                       else Kv.Proto.Get key
                     in
                     let issued = Sim.now (Shell.sim sh) in
                     Shell.request sh conn ~opcode:Kv.Proto.opcode
                       (Kv.Proto.encode_req req) (fun _ ->
                         incr ops;
                         on_done ~now:(Sim.now (Shell.sim sh))
                           ~latency:(Sim.now (Shell.sim sh) - issued);
                         go (n + 1))
                   in
                   go 0))));
  let t0 = Unix.gettimeofday () in
  Sim.run_for sim duration;
  let wall_ms = (Unix.gettimeofday () -. t0) *. 1000.0 in
  (!ops, wall_ms)

type rung = {
  name : string;
  spans : bool;
  head_mod : int;  (* 1 = keep everything *)
  accounted : bool;  (* feed Series + Slo from completions *)
}

let rungs =
  [
    { name = "off"; spans = false; head_mod = 1; accounted = false };
    { name = "spans"; spans = true; head_mod = 1; accounted = false };
    { name = "spans sampled"; spans = true; head_mod = 8; accounted = false };
    { name = "sampled+series+slo";
      spans = true; head_mod = 8; accounted = true };
  ]

let e15 () =
  header "E15" "the observability ladder: span, sampling and SLO overhead";
  let duration = if small () then 60_000 else 240_000 in
  let window = 5_000 in
  Printf.printf
    "single-board KV closed loop, %s cycles; overhead rungs run the\n\
     identical simulation with more telemetry enabled each time\n"
    (commas duration);
  let results =
    List.map
      (fun r ->
        Span.reset ();
        Span.set_enabled r.spans;
        Span.set_sampling ~head_mod:r.head_mod ~slow_cycles:20_000 ();
        let series = Series.create ~window () in
        let slo =
          Slo.create
            (Slo.default_objective ~window ~min_samples:5 ~tenant:"kv"
               ~latency_cycles:2_000 ())
        in
        let on_done ~now ~latency =
          if r.accounted then begin
            Series.observe series ~now "kv.latency" latency;
            Slo.observe slo ~now ~good:(latency <= 2_000)
          end
        in
        let ops, wall_ms = run_workload ~duration ~on_done in
        if r.accounted then begin
          Series.close_upto series duration;
          Slo.check slo ~now:duration
        end;
        let kept = Span.count () and away = Span.sampled () in
        Span.set_enabled false;
        Span.set_sampling ();
        Span.reset ();
        (r, ops, kept, away, wall_ms, series, slo))
      rungs
  in
  table
    [ "telemetry"; "ops"; "spans kept"; "sampled away"; "wall ms" ]
    (List.map
       (fun (r, ops, kept, away, wall_ms, _, _) ->
         [ r.name; commas ops; commas kept; commas away;
           (if !perf_enabled then f1 wall_ms else "-") ])
       results);
  (match results with
  | (_, ops0, _, _, _, _, _) :: rest ->
    let same = List.for_all (fun (_, ops, _, _, _, _, _) -> ops = ops0) rest in
    Printf.printf
      "ops identical across rungs: %s (telemetry never perturbs the sim)\n"
      (if same then "yes" else "NO — BUG")
  | [] -> ());
  (match List.rev results with
  | (_, _, _, _, _, series, slo) :: _ ->
    let closed = Series.closed series "kv.latency" in
    let last_p99 =
      match List.rev (Series.rollups series "kv.latency") with
      | r :: _ -> r.Series.r_p99
      | [] -> 0
    in
    Printf.printf
      "windowed series: %d windows x %s cycles, last-window p99 %s cycles; \
       slo attainment %.1f%% (%d alerts)\n"
      closed (commas window) (commas last_p99)
      (Slo.attainment_pct slo)
      (List.length (Slo.alerts slo))
  | [] -> ())
