(* Bechamel microbenchmarks: per-operation cost of the OS primitives and
   codecs — one Test.make per primitive, all grouped into one run. *)

module Rng = Apiary_engine.Rng
module Stats = Apiary_engine.Stats
module Checksum = Apiary_engine.Checksum
module Sim = Apiary_engine.Sim
module Store = Apiary_cap.Store
module Rights = Apiary_cap.Rights
module Seg_alloc = Apiary_mem.Seg_alloc
module Page_alloc = Apiary_mem.Page_alloc
module Message = Apiary_core.Message
module Wire = Apiary_core.Wire
module Codec = Apiary_accel.Codec
module Kv = Apiary_accel.Kv
module Mesh = Apiary_noc.Mesh
open Bechamel

let data_1k = Rng.bytes_compressible (Rng.create ~seed:1) 1024 ~redundancy:0.7

let msg =
  Message.make
    ~src:{ Message.tile = 1; ep = 1 }
    ~dst:{ Message.tile = 14; ep = 1 }
    ~kind:(Message.Data { opcode = 7 })
    ~corr:42 ~payload:(Bytes.create 256) ~now:1000 ()

let msg_wire = Wire.encode msg

let bench_cap_check () =
  let s = Store.create ~tile:0 () in
  let h =
    match Store.mint s (Store.Segment { base = 0; len = 1 lsl 20 }) Rights.full with
    | Ok h -> h
    | Error _ -> assert false
  in
  Staged.stage (fun () ->
      ignore (Store.check_mem s h ~addr:4096 ~len:64 ~write:true))

let bench_cap_derive () =
  let s = Store.create ~capacity:4096 ~tile:0 () in
  let root =
    match Store.mint s (Store.Segment { base = 0; len = 1 lsl 20 }) Rights.full with
    | Ok h -> h
    | Error _ -> assert false
  in
  Staged.stage (fun () ->
      match Store.derive s ~parent:root ~rights:Rights.ro ~sub:(64, 128) () with
      | Ok h -> ignore (Store.revoke s h)
      | Error _ -> ())

let bench_seg_alloc () =
  let a = Seg_alloc.create ~base:0 ~size:(1 lsl 24) Seg_alloc.First_fit in
  Staged.stage (fun () ->
      match Seg_alloc.alloc a 4096 with
      | Ok b -> Seg_alloc.free a b
      | Error _ -> ())

let bench_page_translate () =
  let pa = Page_alloc.create ~base:0 ~size:(1 lsl 22) ~page_bytes:4096 in
  let sp = Page_alloc.Space.create pa ~tlb_entries:64 ~walk_cycles:20 in
  let v = Result.get_ok (Page_alloc.Space.map sp (1 lsl 20)) in
  let i = ref 0 in
  Staged.stage (fun () ->
      i := (!i + 4096) land ((1 lsl 20) - 1);
      ignore (Page_alloc.Space.translate sp (v + !i)))

let bench_wire_encode () = Staged.stage (fun () -> ignore (Wire.encode msg))
let bench_wire_decode () = Staged.stage (fun () -> ignore (Wire.decode msg_wire))
let bench_crc32 () = Staged.stage (fun () -> ignore (Checksum.crc32 data_1k))
let bench_lz () = Staged.stage (fun () -> ignore (Codec.lz_encode data_1k))

let bench_video () =
  Staged.stage (fun () -> ignore (Codec.video_encode ~q:2 ~width:64 data_1k))

let bench_kv_codec () =
  let req = Kv.Proto.encode_req (Kv.Proto.Put ("key", Bytes.create 128)) in
  Staged.stage (fun () -> ignore (Kv.Proto.decode_req req))

let bench_hist_record () =
  let h = Stats.Histogram.create "b" in
  let i = ref 0 in
  Staged.stage (fun () ->
      incr i;
      Stats.Histogram.record h (!i land 0xFFFF))

let bench_mesh_cycle () =
  (* One full simulator cycle of an idle 4x4 mesh: 16 routers + NICs. *)
  let sim = Sim.create () in
  let _mesh : int Mesh.t = Mesh.create sim Mesh.default_config in
  Staged.stage (fun () -> Sim.step sim)

let tests =
  Test.make_grouped ~name:"apiary" ~fmt:"%s %s"
    [
      Test.make ~name:"monitor mem-cap check" (bench_cap_check ());
      Test.make ~name:"cap derive+revoke" (bench_cap_derive ());
      Test.make ~name:"segment alloc+free 4k" (bench_seg_alloc ());
      Test.make ~name:"page translate (tlb)" (bench_page_translate ());
      Test.make ~name:"wire encode 256B" (bench_wire_encode ());
      Test.make ~name:"wire decode 256B" (bench_wire_decode ());
      Test.make ~name:"crc32 1KiB" (bench_crc32 ());
      Test.make ~name:"lz encode 1KiB" (bench_lz ());
      Test.make ~name:"video encode 1KiB" (bench_video ());
      Test.make ~name:"kv decode request" (bench_kv_codec ());
      Test.make ~name:"histogram record" (bench_hist_record ());
      Test.make ~name:"idle 4x4 mesh cycle" (bench_mesh_cycle ());
    ]

let run () =
  Bench_util.header "MICRO" "per-operation cost of OS primitives (host ns/op)";
  let instances = [ Toolkit.Instance.monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.25) ~kde:(Some 1000) ()
  in
  let raw = Benchmark.all cfg instances tests in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  let rows = ref [] in
  Hashtbl.iter
    (fun name result ->
      match Analyze.OLS.estimates result with
      | Some [ est ] -> rows := (name, est) :: !rows
      | Some _ | None -> ())
    results;
  let rows = List.sort compare !rows in
  Bench_util.table
    [ "primitive"; "ns/op" ]
    (List.map (fun (n, e) -> [ n; Printf.sprintf "%.1f" e ]) rows)
