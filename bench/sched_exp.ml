(* E14 — elastic multi-tenant scheduling: SLO attainment and provisioned
   capacity, elastic scheduler vs static placement, with and without
   migration; plus a board-kill drill through the watchdog alarm path.

   Three tenants share one rack under a diurnal + flash-crowd load
   trace:
     - "web"   small echo service, diurnal swing (steady base, a peak
               window in the middle third of the run);
     - "ml"    a heavy context whose logic-cell footprint only fits the
               big-part boards (the floorplan area constraint biting);
     - "burst" small service with a flash crowd (a sudden spike half way
               through, gone again a sixth of a run later).

   Variants:
     static-res   fixed placement at each tenant's reservation (the
                  per-app toolflow baseline: provision for the average)
     static-peak  fixed placement at each tenant's max replicas
                  (provision for the worst case)
     elastic      lib/sched autoscaling, migration disabled
     elastic+mig  lib/sched autoscaling + hot/cold board migration

   APIARY_E14_SMALL=1 shrinks durations for CI smoke runs. The run is
   deterministic and engine-independent: under APIARY_PAR=boards output
   is byte-identical to the monolithic run (E14's scheduler state lives
   on the controller partition; commands and telemetry ride the same
   staged protocols as frames). *)

module Sim = Apiary_engine.Sim
module Stats = Apiary_engine.Stats
module Accels = Apiary_accel.Accels
module Cluster = Apiary_cluster.Cluster
module Shard_client = Apiary_cluster.Shard_client
module Rack_health = Apiary_cluster.Rack_health
module Placer = Apiary_sched.Placer
module Sched = Apiary_sched.Sched
module Slo = Apiary_obs.Slo
module Floorplan = Apiary_resource.Floorplan
module Parts = Apiary_resource.Parts
module Area = Apiary_resource.Area
open Bench_util

let small () = Sys.getenv_opt "APIARY_E14_SMALL" <> None
let bytes_of n = Bytes.make n 'x'

(* ------------------------------------------------------------------ *)
(* The rack: big-part boards 0-1 (VU9P), small-part boards 2+. The
   per-slot logic-cell budgets come from the floorplan model, so the
   "ml" tenant (sized between the two budgets) can only land on the big
   boards. *)

let noc = { Area.vcs = 2; depth = 4; flit_bits = 32 }

let slot_cells_of_part part =
  match Floorplan.plan ~part ~tiles:16 ~noc ~cap_entries:16 with
  | Some p -> p.Floorplan.slot_logic_cells
  | None -> failwith "e14: OS exceeds part"

let big_slot = slot_cells_of_part Parts.vu9p
let small_slot = slot_cells_of_part Parts.xc7v585t
let slot_cells board = if board < 2 then big_slot else small_slot

(* ------------------------------------------------------------------ *)
(* Tenants. capacity_hint is ops per scheduler epoch (20k cycles) one
   replica sustains; slo_cycles the per-request latency bound. *)

let web_spec =
  {
    Placer.name = "web";
    cells = small_slot / 2;
    state_bytes = 4_096;
    bitstream_bytes = 16_384;
    reservation = 1;
    max_replicas = 3;
    slo_cycles = 5_000;
    capacity_hint = 66;  (* epoch / service time (300) *)
  }

let ml_spec =
  {
    Placer.name = "ml";
    cells = (big_slot + small_slot) / 2;  (* fits VU9P slots only *)
    state_bytes = 65_536;
    bitstream_bytes = 131_072;
    reservation = 1;
    max_replicas = 2;
    slo_cycles = 25_000;
    capacity_hint = 16;  (* epoch / service time (1200) *)
  }

let burst_spec =
  {
    Placer.name = "burst";
    cells = small_slot / 3;
    state_bytes = 2_048;
    bitstream_bytes = 8_192;
    reservation = 1;
    max_replicas = 2;
    slo_cycles = 5_000;
    capacity_hint = 66;
  }

let specs = [ web_spec; ml_spec; burst_spec ]

(* Service times chosen so closed-loop latency (≈ concurrency × cost on
   a saturated replica, tiles serve serially) crosses the SLO at peak
   concurrency on one replica but clears it on two. *)
let behavior_of (spec : Placer.tenant) () =
  let cost =
    match spec.Placer.name with "ml" -> 1_200 | _ -> 300
  in
  Accels.echo ~service:spec.Placer.name ~cost ()

(* ------------------------------------------------------------------ *)
(* Load trace: closed-loop clients per tenant, phased on the controller
   simulator. Ramp-down restarts after a quiet gap so the old loops
   drain instead of chaining on. *)

let ramp sim client ~at ~extra =
  Sim.after sim at (fun () -> Shard_client.start client ~concurrency:extra)

let ramp_down sim client ~at ~restart =
  Sim.after sim at (fun () ->
      Shard_client.stop client;
      Sim.after sim 6_000 (fun () ->
          Shard_client.start client ~concurrency:restart))

let drive_load sim ~duration ~web ~ml ~burst =
  (* base load *)
  ramp sim web ~at:3_000 ~extra:6;
  ramp sim ml ~at:3_100 ~extra:3;
  ramp sim burst ~at:3_200 ~extra:2;
  (* diurnal peak: web triples during the middle third, then falls to a
     night trough *)
  ramp sim web ~at:(duration / 3) ~extra:12;
  ramp_down sim web ~at:(2 * duration / 3) ~restart:2;
  (* flash crowd: burst spikes at half-run, gone a sixth later *)
  ramp sim burst ~at:(duration / 2) ~extra:16;
  ramp_down sim burst ~at:((duration / 2) + (duration / 6)) ~restart:1

let mk_client cluster (spec : Placer.tenant) =
  Shard_client.create cluster ~timeout:20_000 ~service:spec.Placer.name
    ~op:Accels.op_echo ~route:Shard_client.Round_robin
    ~gen:(fun _ -> ("", bytes_of 64))

(* ------------------------------------------------------------------ *)
(* One variant run. Returns per-tenant (ops, slo_ok, total, avg replica
   thousandths) plus scheduler totals and drill facts. *)

(* Plain extract of a tenant's Slo state. Holding the Slo.t itself
   would keep the whole variant's sim graph alive across the sweep (its
   alert subscribers close over the scheduler), quadrupling peak heap. *)
type slo_summary = {
  ss_alerts : int;
  ss_first_alert : int option;
  ss_first_below : int option;
  ss_budget_pct : float;
  ss_attain_pct : float;
}

let summarize_slo slo =
  {
    ss_alerts = List.length (Slo.alerts slo);
    ss_first_alert = Slo.first_alert_cycle slo;
    ss_first_below = Slo.first_below_target slo;
    ss_budget_pct = Slo.budget_remaining_pct slo;
    ss_attain_pct = Slo.attainment_pct slo;
  }

type run_result = {
  per_tenant : (string * int * int * int * int) list;
      (* name, ops, within-SLO, samples, avg replicas x1000 *)
  totals : Sched.totals option;
  failovers : int;
  client_errors : int;
  detections : (int * int) list;  (* rack watchdog (cycle, board) *)
  decisions_json : string option;
  slo_json : string option;  (* Sched.slo_report_json (elastic only) *)
  slos : (string * slo_summary) list;  (* per-tenant extracts (elastic only) *)
  victim : int;  (* board killed by the drill, -1 when none *)
}

type variant = Static of [ `Reserved | `Peak ] | Elastic of { migration : bool }

let variant_name = function
  | Static `Reserved -> "static-res"
  | Static `Peak -> "static-peak"
  | Elastic { migration = false } -> "elastic"
  | Elastic { migration = true } -> "elastic+mig"

let run_variant ~variant ~boards ~duration ~kill =
  Cluster_exp.with_rack ~boards ~clients:5 ~duration (fun sim cluster ->
      let caps =
        List.init boards (fun b ->
            { Placer.board = b; tiles = 4; slot_cells = slot_cells b })
      in
      let sched, static_placement =
        match variant with
        | Static which ->
          let targets =
            List.map
              (fun (s : Placer.tenant) ->
                ( s,
                  match which with
                  | `Reserved -> s.Placer.reservation
                  | `Peak -> s.Placer.max_replicas ))
              specs
          in
          let placement, short =
            Placer.place ~caps ~targets ~current:[] ~load:(fun _ -> 0)
          in
          assert (short = []);
          List.iter
            (fun (name, bs) ->
              let spec = List.find (fun s -> s.Placer.name = name) specs in
              List.iter
                (fun b ->
                  ignore
                    (Cluster.install cluster ~board:b ~service:name
                       (behavior_of spec ())))
                bs)
            placement;
          (None, placement)
        | Elastic { migration } ->
          let cfg =
            {
              Sched.default_config with
              Sched.report_period = 4_000;
              (* A saturated board at these service times moves ~40
                 msgs/beacon, an idle one under 12 (calibrated). *)
              hot_load = (if migration then 30 else max_int / 2);
              cold_load = 12;
              cooldown = 60_000;
              (* Fine-grained SLO windows: a flash crowd exhausts a
                 low-rate tenant's error budget within a couple of
                 thousand cycles, so burn rates must be observable on
                 that scale for the page to lead the breach. *)
              slo_window = 1_000;
              slo_min_samples = 4;
            }
          in
          let sched = Sched.create ~config:cfg cluster ~slot_cells in
          List.iter
            (fun spec ->
              Sched.add_tenant sched ~spec ~behavior:(behavior_of spec))
            specs;
          (Some sched, [])
      in
      let web = mk_client cluster web_spec in
      let ml = mk_client cluster ml_spec in
      let burst = mk_client cluster burst_spec in
      let clients =
        [ (web_spec, web); (ml_spec, ml); (burst_spec, burst) ]
      in
      (match sched with
      | Some sched ->
        List.iter
          (fun ((spec : Placer.tenant), c) ->
            Sched.watch sched ~tenant:spec.Placer.name c)
          clients;
        Sched.start sched
      | None ->
        (* Static placement: point each client's ring at its tenant's
           boards once, before traffic starts. *)
        List.iter
          (fun ((spec : Placer.tenant), c) ->
            Shard_client.sync_boards c
              (Option.value ~default:[]
                 (List.assoc_opt spec.Placer.name static_placement)))
          clients);
      (match sched with
      | Some sched when Sys.getenv_opt "APIARY_E14_DEBUG" <> None ->
        Sim.every sim ~start:20_000 20_000 (fun () ->
            Printf.printf "t=%7d loads:%s\n" (Sim.now sim)
              (String.concat ""
                 (List.init boards (fun b ->
                      Printf.sprintf " %4d" (Sched.board_load sched b)))))
      | _ -> ());
      (* The rack watchdog: failure detection for the drill rides the
         heartbeat/alarm path, not client timeouts. *)
      let health = Rack_health.create cluster in
      drive_load sim ~duration ~web ~ml ~burst;
      let victim = ref (-1) in
      (match kill with
      | None -> ()
      | Some at ->
        (* Kill a board serving the web tenant (deterministic: the
           placement at [at] is a pure function of the run). *)
        Sim.after sim at (fun () ->
            let b =
              match sched with
              | Some sched -> (
                match Sched.placement sched ~tenant:"web" with
                | b :: _ -> b
                | [] -> 0)
              | None -> 0
            in
            victim := b;
            Cluster.kill cluster ~board:b));
      fun () ->
        List.iter (fun (_, c) -> Shard_client.stop c) clients;
        if Sys.getenv_opt "APIARY_E14_DEBUG" <> None then
          List.iter
            (fun ((spec : Placer.tenant), c) ->
              Printf.printf
                "dbg %-6s issued %d completed %d errors %d failovers %d\n"
                spec.Placer.name (Shard_client.issued c)
                (Shard_client.completed c) (Shard_client.errors c)
                (Shard_client.failovers c))
            clients;
        let now = duration in
        let per_tenant =
          List.map
            (fun ((spec : Placer.tenant), c) ->
              let lat = Shard_client.latency c in
              let n = Stats.Histogram.count lat in
              let ok = Stats.Histogram.count_le lat spec.Placer.slo_cycles in
              let avg_x1000 =
                match sched with
                | Some sched ->
                  Sched.replica_cycles sched ~tenant:spec.Placer.name ~now
                  * 1000 / max 1 now
                | None ->
                  1000
                  * List.length
                      (Option.value ~default:[]
                         (List.assoc_opt spec.Placer.name static_placement))
              in
              ( spec.Placer.name,
                Shard_client.completed c,
                ok,
                n,
                avg_x1000 ))
            clients
        in
        {
          per_tenant;
          totals = Option.map Sched.totals sched;
          failovers =
            List.fold_left (fun a (_, c) -> a + Shard_client.failovers c) 0
              clients;
          client_errors =
            List.fold_left (fun a (_, c) -> a + Shard_client.errors c) 0
              clients;
          detections = Rack_health.detections health;
          decisions_json = Option.map Sched.decisions_json sched;
          slo_json = Option.map Sched.slo_report_json sched;
          slos =
            (match sched with
            | None -> []
            | Some sched ->
              List.map
                (fun ((spec : Placer.tenant), _) ->
                  ( spec.Placer.name,
                    summarize_slo (Sched.slo sched ~tenant:spec.Placer.name)
                  ))
                clients);
          victim = !victim;
        })

(* ------------------------------------------------------------------ *)

let attainment_pct ~ok ~n = if n = 0 then 100.0 else 100.0 *. float_of_int ok /. float_of_int n

let avg_replicas_total r =
  List.fold_left (fun a (_, _, _, _, x) -> a + x) 0 r.per_tenant

let overall r =
  let ok = List.fold_left (fun a (_, _, ok, _, _) -> a + ok) 0 r.per_tenant in
  let n = List.fold_left (fun a (_, _, _, n, _) -> a + n) 0 r.per_tenant in
  attainment_pct ~ok ~n

let e14 () =
  header "E14"
    "elastic multi-tenant scheduling: SLO attainment vs provisioned capacity";
  let sm = small () in
  let boards = if sm then 4 else 6 in
  let duration = if sm then 400_000 else 800_000 in
  Printf.printf
    "rack: %d boards (0-1 %s, rest %s); slot budgets %s / %s cells\n\
     tenants: web (diurnal), ml (big-part only), burst (flash crowd)\n"
    boards Parts.vu9p.Parts.name Parts.xc7v585t.Parts.name (commas big_slot)
    (commas small_slot);

  subhead "E14a: SLO attainment and provisioned capacity per policy";
  let variants =
    [
      Static `Reserved;
      Static `Peak;
      Elastic { migration = false };
      Elastic { migration = true };
    ]
  in
  let results =
    List.map
      (fun v -> (v, run_variant ~variant:v ~boards ~duration ~kill:None))
      variants
  in
  table
    ([ "policy"; "slo%" ]
    @ List.concat_map
        (fun (s : Placer.tenant) -> [ s.Placer.name ^ " slo%"; "repl" ])
        specs
    @ [ "avg repl"; "ops"; "mig"; "up/down"; "defer" ])
    (List.map
       (fun (v, r) ->
         let per =
           List.concat_map
             (fun (_, _, ok, n, avg) ->
               [ f1 (attainment_pct ~ok ~n); f2 (float_of_int avg /. 1000.) ])
             r.per_tenant
         in
         let ops =
           List.fold_left (fun a (_, o, _, _, _) -> a + o) 0 r.per_tenant
         in
         let mig, ud, dfr =
           match r.totals with
           | None -> ("-", "-", "-")
           | Some t ->
             ( i t.Sched.migrations,
               Printf.sprintf "%d/%d" t.Sched.scale_ups t.Sched.scale_downs,
               i t.Sched.deferred )
         in
         [ variant_name v; f1 (overall r) ]
         @ per
         @ [
             f2 (float_of_int (avg_replicas_total r) /. 1000.);
             commas ops;
             mig;
             ud;
             dfr;
           ])
       results);
  Printf.printf
    "(static-res underprovisions the peaks, static-peak pays for %d\n\
    \ replicas all run long; the elastic policies track demand — and\n\
    \ migration additionally drains congested boards)\n"
    (List.fold_left (fun a (s : Placer.tenant) -> a + s.Placer.max_replicas) 0 specs);

  (* The migrating run's decision log is the artifact CI validates. *)
  (match List.assoc (Elastic { migration = true }) results with
  | { decisions_json = Some json; _ } ->
    let oc = open_out "BENCH_e14_decisions.json" in
    output_string oc json;
    close_out oc;
    Printf.printf "decision log -> BENCH_e14_decisions.json\n"
  | _ -> ());

  subhead "E14b: board-kill drill (watchdog alarm path, elastic+mig)";
  let kill_at = duration / 2 in
  let r =
    run_variant
      ~variant:(Elastic { migration = true })
      ~boards ~duration ~kill:(Some kill_at)
  in
  let detect =
    match List.find_opt (fun (_, b) -> b = r.victim) r.detections with
    | Some (cyc, _) -> cyc
    | None -> -1
  in
  let replaced, deferred =
    match r.totals with
    | Some t -> (t.Sched.replaced, t.Sched.deferred)
    | None -> (0, 0)
  in
  table
    [ "event"; "value" ]
    [
      [ "board killed (cycle)";
        Printf.sprintf "%s (board %d, serving web)" (commas kill_at) r.victim ];
      [ "watchdog detection (cycle)";
        (if detect >= 0 then commas detect else "none") ];
      [ "detection lag (cycles)";
        (if detect >= 0 then commas (detect - kill_at) else "-") ];
      [ "replicas re-placed on survivors"; i replaced ];
      [ "placements deferred (no capacity)"; i deferred ];
      [ "requests reissued (failovers)"; i r.failovers ];
      [ "transient errors (all retried)"; i r.client_errors ];
      [ "overall SLO attainment"; f1 (overall r) ^ "%" ];
    ];
  Printf.printf
    "(the watchdog's report_down reaches the scheduler and the shard\n\
    \ clients in the same announcement: displaced tenants are re-placed\n\
    \ and in-flight work reissued without waiting out request timeouts)\n";

  subhead "E14c: burn-rate alerting (lib/obs/slo, elastic+mig)";
  let em = List.assoc (Elastic { migration = true }) results in
  (match em.slo_json with
  | Some json ->
    let oc = open_out "BENCH_e14_slo.json" in
    output_string oc json;
    close_out oc
  | None -> ());
  let opt_cyc = function None -> "-" | Some c -> commas c in
  table
    [ "tenant"; "alerts"; "first alert"; "first below target"; "budget left";
      "attain%" ]
    (List.map
       (fun (name, s) ->
         [
           name;
           i s.ss_alerts;
           opt_cyc s.ss_first_alert;
           opt_cyc s.ss_first_below;
           f1 s.ss_budget_pct ^ "%";
           f1 s.ss_attain_pct;
         ])
       em.slos);
  (* The headline property: during the flash crowd the burst tenant's
     fast-burn page fires before whole-run attainment actually crosses
     below target — the alert leads the breach instead of reporting it. *)
  (match List.assoc_opt "burst" em.slos with
  | Some s -> (
    match (s.ss_first_alert, s.ss_first_below) with
    | Some alert, Some below ->
      Printf.printf
        "burst: burn alert at %s, attainment crossed below target at %s -> \
         alert led the breach by %s cycles\n"
        (commas alert) (commas below)
        (commas (below - alert))
    | Some alert, None ->
      Printf.printf
        "burst: burn alert at %s; whole-run attainment never fell below \
         target (autoscaler absorbed the crowd)\n"
        (commas alert)
    | None, _ -> Printf.printf "burst: no burn alert fired\n")
  | None -> ());
  Printf.printf "slo report -> BENCH_e14_slo.json\n";
