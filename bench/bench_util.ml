(* Shared helpers for the experiment harness: headers, table rendering,
   cycle/time conversions and common simulation setups. *)

module Sim = Apiary_engine.Sim
module Stats = Apiary_engine.Stats

let cycle_ns = 4.0 (* 250 MHz fabric *)

let us_of_cycles c = float_of_int c *. cycle_ns /. 1000.0

let header id title =
  Printf.printf "\n=== %s: %s ===\n" id title

let subhead s = Printf.printf "\n-- %s --\n" s

(* Render a table: column titles + rows of strings, auto-width. *)
let table cols rows =
  let all = cols :: rows in
  let ncols = List.length cols in
  let width i =
    List.fold_left (fun w row -> max w (String.length (List.nth row i))) 0 all
  in
  let widths = List.init ncols width in
  let print_row row =
    List.iteri
      (fun i cell -> Printf.printf "%-*s  " (List.nth widths i) cell)
      row;
    print_newline ()
  in
  print_row cols;
  print_row (List.map (fun w -> String.make w '-') widths);
  List.iter print_row rows

let f1 v = Printf.sprintf "%.1f" v
let f2 v = Printf.sprintf "%.2f" v
let i = string_of_int
let pct v = Printf.sprintf "%.1f%%" (100.0 *. v)

let p50 h = Stats.Histogram.percentile h 50.0
let p99 h = Stats.Histogram.percentile h 99.0

let throughput_per_sec ~count ~cycles =
  float_of_int count /. (float_of_int cycles *. cycle_ns *. 1e-9)

let commas n =
  let s = string_of_int n in
  let len = String.length s in
  let buf = Buffer.create (len + (len / 3)) in
  String.iteri
    (fun idx c ->
      if idx > 0 && (len - idx) mod 3 = 0 then Buffer.add_char buf ',';
      Buffer.add_char buf c)
    s;
  Buffer.contents buf
