(* Shared helpers for the experiment harness: headers, table rendering,
   cycle/time conversions and common simulation setups. *)

module Sim = Apiary_engine.Sim
module Par_sim = Apiary_engine.Par_sim
module Profile = Apiary_engine.Profile
module Stats = Apiary_engine.Stats

let cycle_ns = 4.0 (* 250 MHz fabric *)

let us_of_cycles c = float_of_int c *. cycle_ns /. 1000.0

let header id title =
  Printf.printf "\n=== %s: %s ===\n" id title

let subhead s = Printf.printf "\n-- %s --\n" s

(* Render a table: column titles + rows of strings, auto-width. *)
let table cols rows =
  let all = cols :: rows in
  let ncols = List.length cols in
  let width i =
    List.fold_left (fun w row -> max w (String.length (List.nth row i))) 0 all
  in
  let widths = List.init ncols width in
  let print_row row =
    List.iteri
      (fun i cell -> Printf.printf "%-*s  " (List.nth widths i) cell)
      row;
    print_newline ()
  in
  print_row cols;
  print_row (List.map (fun w -> String.make w '-') widths);
  List.iter print_row rows

let f1 v = Printf.sprintf "%.1f" v
let f2 v = Printf.sprintf "%.2f" v
let i = string_of_int
let pct v = Printf.sprintf "%.1f%%" (100.0 *. v)

let commas n =
  let s = string_of_int n in
  let len = String.length s in
  let buf = Buffer.create (len + (len / 3)) in
  String.iteri
    (fun idx c ->
      if idx > 0 && (len - idx) mod 3 = 0 then Buffer.add_char buf ',';
      Buffer.add_char buf c)
    s;
  Buffer.contents buf

let p50 h = Stats.Histogram.percentile h 50.0
let p99 h = Stats.Histogram.percentile h 99.0

let throughput_per_sec ~count ~cycles =
  float_of_int count /. (float_of_int cycles *. cycle_ns *. 1e-9)

(* ------------------------------------------------------------------ *)
(* Domain-parallel sweeps.

   Each simulation instance is fully self-contained (per-sim RNGs, stats
   and trace buffers), so independent sweep points can run on separate
   domains. The function must not print — callers collect results and
   render tables on the main domain, which keeps output ordering
   deterministic and identical to the sequential run. *)

let domain_count () =
  match Sys.getenv_opt "APIARY_DOMAINS" with
  | Some s -> (try max 1 (int_of_string s) with _ -> 1)
  | None -> max 1 (Domain.recommended_domain_count () - 1)

(* APIARY_PAR selects the conservative parallel-in-time engine:
   [boards] partitions E12 racks one-board-per-domain (lookahead = the
   uplink's 126 cycles), [mesh] stripes E3's standalone meshes by
   columns (lookahead = the 1-cycle router link). Anything else — or
   unset — runs the reference sequential engine. *)
let par_mode () =
  match Sys.getenv_opt "APIARY_PAR" with
  | Some "boards" -> `Boards
  | Some "mesh" -> `Mesh
  | _ -> `Off

let parallel_map f items =
  let items = Array.of_list items in
  let n = Array.length items in
  if n = 0 then []
  else begin
    let k = min n (domain_count ()) in
    if k <= 1 then Array.to_list (Array.map f items)
    else begin
      let results = Array.make n None in
      let next = Atomic.make 0 in
      let worker () =
        let rec go () =
          let i = Atomic.fetch_and_add next 1 in
          if i < n then begin
            results.(i) <- Some (f items.(i));
            go ()
          end
        in
        go ()
      in
      let domains = Array.init (k - 1) (fun _ -> Domain.spawn worker) in
      worker ();
      Array.iter Domain.join domains;
      Array.to_list
        (Array.map
           (function Some r -> r | None -> failwith "parallel_map: missing result")
           results)
    end
  end

(* ------------------------------------------------------------------ *)
(* Perf self-measurement (--perf). *)

let perf_enabled = ref false

(* Telemetry capture (--obs): E12 attaches the span recorder and the
   metrics registry and writes Chrome-trace/metrics JSON next to
   BENCH_perf.json. Deterministic capture needs a monolithic engine, so
   obs runs ignore APIARY_PAR=boards. *)
let obs_enabled = ref false

type perf_record = {
  pr_id : string;
  pr_wall_s : float;
  pr_cycles : int;
  pr_skipped : int;  (* cycles fast-forwarded through quiescence *)
  pr_active_ticks : int;  (* ticker invocations actually executed *)
  pr_skipped_ticks : int;  (* ticker invocations elided while parked *)
  pr_stall_s : float;  (* barrier stall (parallel engine only) *)
  pr_windows : int;  (* adaptive sync windows executed during the run *)
  pr_win_min : int;  (* narrowest/widest window width so far, process-wide *)
  pr_win_max : int;
}

let perf_records : perf_record list ref = ref []

(* Wall-clock an experiment and record simulated cycles advanced across
   all sims (including parallel domains) while it ran. *)
let timed id f () =
  if not !perf_enabled then f ()
  else begin
    let cycles0 = Sim.total_cycles () in
    let skipped0 = Sim.total_skipped () in
    let active_t0 = Sim.total_active_ticks () in
    let skipped_t0 = Sim.total_skipped_ticks () in
    let stall0 = Par_sim.total_barrier_stall_s () in
    let windows0, _, _ = Par_sim.total_window_stats () in
    let t0 = Unix.gettimeofday () in
    f ();
    let dt = Unix.gettimeofday () -. t0 in
    (* Window count is differenced per experiment; the min/max widths
       are process-wide high/low watermarks (windows from earlier
       experiments included), which is all the atomic accounting can
       offer without per-instance plumbing. *)
    let windows1, win_min, win_max = Par_sim.total_window_stats () in
    perf_records :=
      {
        pr_id = id;
        pr_wall_s = dt;
        pr_cycles = Sim.total_cycles () - cycles0;
        pr_skipped = Sim.total_skipped () - skipped0;
        pr_active_ticks = Sim.total_active_ticks () - active_t0;
        pr_skipped_ticks = Sim.total_skipped_ticks () - skipped_t0;
        pr_stall_s = Par_sim.total_barrier_stall_s () -. stall0;
        pr_windows = windows1 - windows0;
        pr_win_min = win_min;
        pr_win_max = win_max;
      }
      :: !perf_records
  end

let write_perf_json path =
  let oc = open_out path in
  let records = List.rev !perf_records in
  (* Honest machine context for the run: how many cores the host
     actually offers (speedup claims are meaningless without it) and
     which parallel engine, if any, was selected. perf_guard keys on
     per-experiment "id" lines and skips these. *)
  Printf.fprintf oc "{\n  \"domains_used\": %d,\n  \"par_mode\": \"%s\",\n"
    (Domain.recommended_domain_count ())
    (match par_mode () with
    | `Boards -> "boards"
    | `Mesh -> "mesh"
    | `Off -> "off");
  output_string oc "  \"experiments\": [\n";
  List.iteri
    (fun i r ->
      Printf.fprintf oc
        "    {\"id\": \"%s\", \"wall_s\": %.3f, \"sim_cycles\": %d, \"cycles_per_s\": %.0f, \"skipped_cycles\": %d, \"active_ticks\": %d, \"skipped_ticks\": %d%s}%s\n"
        r.pr_id r.pr_wall_s r.pr_cycles
        (if r.pr_wall_s > 0.0 then float_of_int r.pr_cycles /. r.pr_wall_s
         else 0.0)
        r.pr_skipped r.pr_active_ticks r.pr_skipped_ticks
        ((if r.pr_stall_s > 0.0 then
            Printf.sprintf ", \"barrier_stall_s\": %.3f" r.pr_stall_s
          else "")
        ^
        if r.pr_windows > 0 then
          Printf.sprintf
            ", \"windows\": %d, \"win_min\": %d, \"win_max\": %d"
            r.pr_windows r.pr_win_min r.pr_win_max
        else "")
        (if i = List.length records - 1 then "" else ","))
    records;
  output_string oc "  ]\n}\n";
  close_out oc;
  Printf.printf "\nperf: wrote %s\n" path

(* Hot-path profile (APIARY_PROF=1): cumulative wall time and invocation
   count per ticker name, aggregated across every simulator in the
   process. Read back through the metrics registry — the built-in
   [obs.prof] sampler publishes [prof.<ticker>.calls/.seconds] gauges —
   so --perf console output and --obs metrics dumps render the same
   pipeline's numbers. *)
let print_profile () =
  if Profile.enabled () then begin
    let module Registry = Apiary_obs.Registry in
    let gauge suffix name =
      Stats.Gauge.value
        (Registry.gauge (Printf.sprintf "prof.%s.%s" name suffix))
    in
    let rows =
      List.filter_map
        (fun (key, inst) ->
          match inst with
          | Registry.Gauge _ when
              String.length key > 13
              && String.sub key 0 5 = "prof."
              && String.sub key (String.length key - 8) 8 = ".seconds" ->
            Some (String.sub key 5 (String.length key - 13))
          | _ -> None)
        (Registry.snapshot ())
    in
    (* The registry snapshot is alphabetical; keep the profiler's own
       order (descending wall time) for the table. *)
    let rows =
      List.sort
        (fun a b -> compare (gauge "seconds" b) (gauge "seconds" a))
        rows
    in
    match rows with
    | [] -> ()
    | rows ->
      subhead "ticker profile (APIARY_PROF)";
      table
        [ "ticker"; "calls"; "skipped"; "seconds"; "ns/call" ]
        (List.map
           (fun name ->
             let calls = int_of_float (gauge "calls" name) in
             let skipped = int_of_float (gauge "skipped" name) in
             let seconds = gauge "seconds" name in
             [
               name;
               commas calls;
               commas skipped;
               Printf.sprintf "%.3f" seconds;
               f1 (seconds *. 1e9 /. float_of_int (max 1 calls));
             ])
           rows)
  end
