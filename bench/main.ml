(* Benchmark/experiment driver.

     dune exec bench/main.exe            # everything (T1, F1, E1..E10, micro)
     dune exec bench/main.exe -- t1 e4   # selected experiments
     dune exec bench/main.exe -- micro   # Bechamel microbenchmarks only

   Each experiment prints the table(s) it regenerates; EXPERIMENTS.md
   maps them to the paper's claims. *)

let registry =
  [
    ("t1", ("paper Table 1 + part capacity", Experiments.t1));
    ("f1", ("paper Figure 1 configuration + isolation matrix", Experiments.fig1));
    ("e1", ("monitor overhead: area/latency/policing", Experiments.e1));
    ("e2", ("direct-attached vs host-mediated KV", Experiments.e2));
    ("e3", ("NoC scalability + wiring model", Experiments.e3));
    ("e4", ("isolation under attack", Experiments.e4));
    ("e5", ("segments+caps vs paging", Experiments.e5));
    ("e6", ("fail-stop vs preemptible contexts", Experiments.e6));
    ("e7", ("scale-out behind a load balancer", Experiments.e7));
    ("e8", ("IPC microbenchmarks", Experiments.e8));
    ("e9", ("QoS under congestion", Experiments.e9));
    ("e10", ("partial reconfiguration under load", Experiments.e10));
    ("e11", ("remote OS services over the network", Experiments.e11));
    ("e12", ("multi-board rack: sharding, remote penalty, failover", Cluster_exp.e12));
    ("e13", ("in-fabric introspection: stat service, watchdog, flight recorder", Obs_exp.e13));
    ("e14", ("elastic multi-tenant scheduling: place, migrate, autoscale", Sched_exp.e14));
    ("e15", ("the observability ladder: span, sampling and SLO overhead", Slo_exp.e15));
    ("e16", ("in-band telemetry plane: push agents, collector, exemplars", Telemetry_exp.e16));
    ("abl", ("design-choice ablations (routing/VCs/depth/flit width)", Ablations.run));
    ("micro", ("Bechamel primitive costs", Micro.run));
  ]

let usage () =
  print_endline "usage: main.exe [--perf] [--obs] [experiment ...]";
  print_endline "experiments:";
  List.iter (fun (id, (desc, _)) -> Printf.printf "  %-6s %s\n" id desc) registry;
  print_endline "  all    run everything (default)";
  print_endline "options:";
  print_endline
    "  --perf record wall time and simulated cycles/s per experiment into\n\
    \         BENCH_perf.json (timing only; experiment output is unchanged)";
  print_endline
    "  --obs  capture telemetry during e12: span traces of a cross-board\n\
    \         call and the failover drill (BENCH_obs_call_trace.json,\n\
    \         BENCH_obs_trace.json — Chrome trace_event format, open in\n\
    \         Perfetto) plus a metrics snapshot (BENCH_obs_metrics.json)"

let run_one (id, (_, f)) = Bench_util.timed id f ()

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let perf, args = List.partition (fun a -> a = "--perf") args in
  if perf <> [] then Bench_util.perf_enabled := true;
  let obs, args = List.partition (fun a -> a = "--obs") args in
  if obs <> [] then Bench_util.obs_enabled := true;
  (match args with
  | [] | [ "all" ] -> List.iter (fun e -> run_one e) registry
  | args ->
    let bad = List.filter (fun a -> not (List.mem_assoc a registry)) args in
    if bad <> [] || List.mem "--help" args || List.mem "-h" args then usage ()
    else
      List.iter (fun a -> run_one (a, List.assoc a registry)) args);
  Bench_util.print_profile ();
  (* Nothing ran (e.g. bad experiment name): don't clobber a previous
     perf record with an empty one. *)
  if !Bench_util.perf_enabled && !Bench_util.perf_records <> [] then
    Bench_util.write_perf_json "BENCH_perf.json"
