(* Ablations over the design choices DESIGN.md calls out: routing order,
   virtual-channel count, buffer depth and flit width — each swept with
   the same synthetic workloads, reporting both performance and the area
   the resource model charges for the configuration. *)

module Sim = Apiary_engine.Sim
module Rng = Apiary_engine.Rng
module Stats = Apiary_engine.Stats
module Mesh = Apiary_noc.Mesh
module Coord = Apiary_noc.Coord
module Routing = Apiary_noc.Routing
module Traffic = Apiary_noc.Traffic
module Packet = Apiary_noc.Packet
module Area = Apiary_resource.Area
open Bench_util

let run_mesh ?(cols = 4) ?(rows = 4) ?(vcs = 2) ?(depth = 4) ?(flit_bytes = 16)
    ?(routing = Routing.Xy) ~pattern ~rate ~payload_bytes ~cycles () =
  let sim = Sim.create () in
  let mesh : int Mesh.t =
    Mesh.create sim
      { Mesh.cols; rows; vcs; depth; flit_bytes; routing; qos = false }
  in
  let rng = Rng.create ~seed:17 in
  let gen = Traffic.start mesh ~rng ~pattern ~rate ~payload_bytes ~payload:0 () in
  Sim.run_for sim cycles;
  Traffic.stop_gen gen;
  Sim.run_for sim (cycles / 4);
  let delivered = Mesh.packets_delivered mesh in
  let flits = Packet.flits_for ~flit_bytes ~payload_bytes in
  ( p50 (Mesh.latency mesh),
    p99 (Mesh.latency mesh),
    float_of_int (delivered * flits) /. float_of_int cycles /. float_of_int (cols * rows),
    float_of_int delivered /. float_of_int (max 1 (Traffic.offered gen)) )

let routing_ablation () =
  subhead "routing order on a non-square (8x2) mesh, uniform traffic";
  (* On a rectangular mesh the dimension traversed first carries the long
     hauls: XY loads the 8-wide X links, YX funnels through the 2-tall Y
     links — the classic reason dimension order must match the aspect
     ratio. (On a square mesh the two are symmetric duals.) *)
  let row routing name =
    let l50, l99, sat, acc =
      run_mesh ~cols:8 ~rows:2 ~routing ~pattern:Traffic.Uniform ~rate:0.25
        ~payload_bytes:32 ~cycles:30_000 ()
    in
    [ name; i l50; i l99; f2 sat; pct acc ]
  in
  table
    [ "routing"; "p50"; "p99"; "sat fl/cyc/tile"; "delivered" ]
    [ row Routing.Xy "XY (long dim first)"; row Routing.Yx "YX (short dim first)" ]

let vc_ablation () =
  subhead "virtual channels: class separation vs router area";
  (* VC = class in this NoC, so extra VCs buy isolation between traffic
     classes, not raw bandwidth: measure a small class-1 flow's p99 under
     a heavy class-0 load of large packets sharing the same links. *)
  let run_classes ~vcs =
    let sim = Sim.create () in
    let mesh : int Mesh.t =
      Mesh.create sim
        { Mesh.cols = 4; rows = 4; vcs; depth = 4; flit_bytes = 16;
          routing = Routing.Xy; qos = false }
    in
    let rng = Rng.create ~seed:23 in
    let _bulk =
      Traffic.start mesh ~rng ~pattern:(Traffic.Hotspot (Coord.make 2 2, 0.7))
        ~rate:0.15 ~payload_bytes:512 ~cls:0 ~payload:0 ()
    in
    Sim.every sim 200 (fun () ->
        Mesh.send mesh ~src:(Coord.make 0 2) ~dst:(Coord.make 3 2) ~cls:1
          ~payload_bytes:16 0);
    Sim.run_for sim 40_000;
    p99 (Mesh.latency_of_class mesh 1)
  in
  let rows =
    List.map
      (fun vcs ->
        let a = Area.router { Area.vcs; depth = 4; flit_bits = 128 } in
        [ i vcs; i (run_classes ~vcs); commas a.Area.luts ])
      [ 1; 2; 4 ]
  in
  table [ "VCs"; "small-flow p99 under bulk load (cyc)"; "router LUTs" ] rows

let depth_ablation () =
  subhead "input buffer depth (uniform, rate 0.4, 32 B)";
  let rows =
    List.map
      (fun depth ->
        let _, l99, sat, _ =
          run_mesh ~depth ~pattern:Traffic.Uniform ~rate:0.4 ~payload_bytes:32
            ~cycles:30_000 ()
        in
        let a = Area.router { Area.vcs = 2; depth; flit_bits = 128 } in
        [ i depth; f2 sat; i l99; commas a.Area.luts ])
      [ 2; 4; 8; 16 ]
  in
  table [ "depth (flits)"; "sat fl/cyc/tile"; "p99 (cyc)"; "router LUTs" ] rows

let flit_width_ablation () =
  subhead "flit width: serialization latency vs area (1 KiB payload, low load)";
  let rows =
    List.map
      (fun flit_bytes ->
        let l50, _, _, _ =
          run_mesh ~flit_bytes ~pattern:Traffic.Uniform ~rate:0.002
            ~payload_bytes:1024 ~cycles:30_000 ()
        in
        let a = Area.router { Area.vcs = 2; depth = 4; flit_bits = flit_bytes * 8 } in
        [ i (flit_bytes * 8); i l50; commas a.Area.luts ])
      [ 8; 16; 32; 64 ]
  in
  table [ "flit bits"; "1 KiB pkt p50 (cyc)"; "router LUTs" ] rows;
  Printf.printf
    "\n(wider flits buy packet latency linearly and cost crossbar area\n superlinearly — the knob a hardened NoC turns for you)\n"

let run () =
  header "ABL" "design-choice ablations (routing / VCs / depth / flit width)";
  routing_ablation ();
  vc_ablation ();
  depth_ablation ();
  flit_width_ablation ()
