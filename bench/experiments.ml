(* The experiment harness: regenerates the paper's quantitative artifacts
   (Table 1, Figure 1) and runs the E1..E10 experiments defined in
   DESIGN.md §3 — the measurements the HotOS paper calls for but, as a
   position paper, does not contain. EXPERIMENTS.md records expectation
   vs measurement for each. *)

module Sim = Apiary_engine.Sim
module Par_sim = Apiary_engine.Par_sim
module Rng = Apiary_engine.Rng
module Stats = Apiary_engine.Stats
module Mesh = Apiary_noc.Mesh
module Coord = Apiary_noc.Coord
module Routing = Apiary_noc.Routing
module Traffic = Apiary_noc.Traffic
module Rights = Apiary_cap.Rights
module Seg_alloc = Apiary_mem.Seg_alloc
module Page_alloc = Apiary_mem.Page_alloc
module Message = Apiary_core.Message
module Monitor = Apiary_core.Monitor
module Shell = Apiary_core.Shell
module Kernel = Apiary_core.Kernel
module Kv = Apiary_accel.Kv
module Accels = Apiary_accel.Accels
module Faulty = Apiary_accel.Faulty
module Multi_ctx = Apiary_accel.Multi_ctx
module Ctx_manager = Apiary_accel.Ctx_manager
module Client = Apiary_net.Client
module Netproto = Apiary_net.Netproto
module Mac = Apiary_net.Mac
module Link = Apiary_net.Link
module Switch = Apiary_net.Switch
module Board = Apiary_apps.Board
module Video_pipeline = Apiary_apps.Video_pipeline
module Hosted = Apiary_baseline.Hosted
module Remote_service = Apiary_baseline.Remote_service
module Netsvc = Apiary_net.Netsvc
module Energy = Apiary_baseline.Energy
module Direct_wired = Apiary_baseline.Direct_wired
module Parts = Apiary_resource.Parts
module Area = Apiary_resource.Area
module Floorplan = Apiary_resource.Floorplan
open Bench_util

let bytes_of n = Bytes.make n 'x'

let mk_kernel ?(cols = 4) ?(rows = 4) ?(monitor = Monitor.default_config)
    ?(overrides = []) ?(qos = false) () =
  let sim = Sim.create () in
  let mesh = { Mesh.default_config with Mesh.cols; rows; qos } in
  let cfg =
    {
      Kernel.default_config with
      Kernel.mesh;
      monitor;
      monitor_overrides = overrides;
      mem_tile = (cols * rows) - 1;
      dram_bytes = 4 * 1024 * 1024;
    }
  in
  (sim, Kernel.create sim cfg)

let with_tile k ~tile ~delay f =
  Kernel.install k ~tile
    (Shell.behavior "driver" ~on_boot:(fun sh ->
         Sim.after (Shell.sim sh) delay (fun () -> f sh)))

(* ------------------------------------------------------------------ *)
(* T1 — the paper's Table 1 *)

let t1 () =
  header "T1" "Table 1 — logic cells across Virtex generations";
  table
    [ "family"; "year"; "part"; "logic cells" ]
    (List.map
       (fun p ->
         [ p.Parts.family; i p.Parts.year; p.Parts.name; commas p.Parts.logic_cells ])
       Parts.table1);
  let small, large = Parts.generation_scaling () in
  Printf.printf
    "\nsmallest-part scaling V7 -> VU+: %.2fx (paper: \"about 50%%\")\n" small;
  Printf.printf "largest-part scaling  V7 -> VU+: %.2fx (paper: \"3x\")\n" large;
  subhead "extension: Apiary capacity of each part (64 kc slots)";
  let noc = { Area.vcs = 2; depth = 4; flit_bits = 128 } in
  table
    [ "part"; "max tiles"; "OS overhead" ]
    (List.map
       (fun p ->
         let tiles =
           Floorplan.max_tiles ~part:p ~noc ~cap_entries:256 ~min_slot_cells:64_000
         in
         let oh =
           match Floorplan.plan ~part:p ~tiles:(max 1 tiles) ~noc ~cap_entries:256 with
           | Some pl -> pct pl.Floorplan.overhead_frac
           | None -> "n/a"
         in
         [ p.Parts.name; i tiles; oh ])
       Parts.all)

(* ------------------------------------------------------------------ *)
(* F1 — the paper's Figure 1 configuration, with its isolation matrix *)

let fig1 () =
  header "F1" "Figure 1 — two applications sharing one board";
  (* App 1 (video): encoder tile + compressor tile. App 2: KV store.
     OS: name, memory (kernel) + the tiles' monitors. Policies encode app
     membership: each tile accepts connections only from its own app. *)
  let sim, k = mk_kernel () in
  let enc, comp, kv = (1, 2, 5) in
  let policy allowed sh =
    Shell.set_connect_policy sh (fun src -> List.mem src.Message.tile allowed)
  in
  Kernel.install k ~tile:comp
    (let b = Accels.compressor ~algo:`Lz () in
     { b with Shell.on_boot = (fun sh -> policy [ enc ] sh; b.Shell.on_boot sh) });
  Kernel.install k ~tile:enc
    (let b =
       Accels.transform_stage ~service:"vpipe" ~next:"compress"
         ~f:(Apiary_accel.Codec.video_encode ~q:2 ~width:64)
         ()
     in
     { b with Shell.on_boot = (fun sh -> policy [ 3 ] sh; b.Shell.on_boot sh) });
  let kv_b, _ = Kv.behavior () in
  Kernel.install k ~tile:kv
    { kv_b with Shell.on_boot = (fun sh -> policy [ 6 ] sh; kv_b.Shell.on_boot sh) };
  (* Tiles 3 and 6 play the apps' own clients (e.g. their network-facing
     members); tile 7 is an outsider. *)
  let results : (int * string, string) Hashtbl.t = Hashtbl.create 16 in
  let attempt src service =
    with_tile k ~tile:src ~delay:600 (fun sh ->
        Shell.connect sh ~service (fun r ->
            Hashtbl.replace results (src, service)
              (match r with
              | Ok _ -> "CONNECT"
              | Error (Shell.Denied reason) ->
                if reason = "refused by policy" then "refused" else "denied"
              | Error e -> Shell.rpc_error_to_string e)))
  in
  attempt 3 "vpipe";
  attempt 6 "kv";
  with_tile k ~tile:7 ~delay:600 (fun sh ->
      Shell.connect sh ~service:"kv" (fun r ->
          Hashtbl.replace results (7, "kv")
            (match r with Ok _ -> "CONNECT" | Error _ -> "refused"));
      Shell.connect sh ~service:"vpipe" (fun r ->
          Hashtbl.replace results (7, "vpipe")
            (match r with Ok _ -> "CONNECT" | Error _ -> "refused"));
      (* And a lawless send straight into the KV tile. *)
      Shell.send_raw sh ~dst:{ Message.tile = kv; ep = 1 } ~opcode:1 (bytes_of 32));
  Sim.run_for sim 20_000;
  let get who svc =
    Option.value ~default:"-" (Hashtbl.find_opt results (who, svc))
  in
  table
    [ "requester"; "vpipe (app1)"; "kv (app2)" ]
    [
      [ "tile 3 (app1 member)"; get 3 "vpipe"; "-" ];
      [ "tile 6 (app2 member)"; "-"; get 6 "kv" ];
      [ "tile 7 (outsider)"; get 7 "vpipe"; get 7 "kv" ];
    ];
  Printf.printf
    "\nwild sends from outsider into app2's tile: %d denied at source monitor\n"
    (Monitor.denied (Kernel.monitor k 7));
  Printf.printf
    "encoder -> compressor composition (intra-app1): %s\n"
    (match Monitor.state (Kernel.monitor k enc) with
    | Monitor.Running -> "established (pipeline live)"
    | s -> Monitor.state_to_string s)

(* ------------------------------------------------------------------ *)
(* E1 — monitor overhead: area, latency, policing throughput *)

let e1_area () =
  subhead "E1a: per-tile OS hardware (128-bit flits, 256 caps)";
  let noc = { Area.vcs = 2; depth = 4; flit_bits = 128 } in
  let r = Area.router noc in
  let m = Area.monitor ~cap_entries:256 ~service_entries:8 ~egress_depth:64 ~flit_bits:128 in
  let s = Area.shell ~rpc_entries:32 ~flit_bits:128 in
  table
    [ "component"; "LUTs"; "FFs"; "BRAM Kb" ]
    [
      [ "NoC router"; commas r.Area.luts; commas r.Area.ffs; i r.Area.bram_kb ];
      [ "Apiary monitor"; commas m.Area.luts; commas m.Area.ffs; i m.Area.bram_kb ];
      [ "shell"; commas s.Area.luts; commas s.Area.ffs; i s.Area.bram_kb ];
    ];
  subhead "E1a: OS overhead fraction vs tile count (VU9P)";
  let rows =
    List.filter_map
      (fun tiles ->
        match Floorplan.plan ~part:Parts.vu9p ~tiles ~noc ~cap_entries:256 with
        | Some p ->
          Some
            [ i tiles;
              commas p.Floorplan.os_logic_cells;
              commas p.Floorplan.slot_logic_cells;
              pct p.Floorplan.overhead_frac ]
        | None -> Some [ i tiles; "-"; "-"; "does not fit" ])
      [ 4; 8; 16; 32; 64 ]
  in
  table [ "tiles"; "OS logic cells"; "slot budget"; "overhead" ] rows

let e1_latency () =
  subhead "E1b: message latency through the monitor (adjacent tiles, 64 B)";
  let run ~enforce ~check =
    let monitor =
      { Monitor.default_config with Monitor.enforce; check_latency = check }
    in
    let sim, k = mk_kernel ~monitor () in
    Kernel.install k ~tile:2 (Accels.echo ());
    let rtts = Stats.Histogram.create "rtt" in
    with_tile k ~tile:1 ~delay:500 (fun sh ->
        Shell.connect sh ~service:"echo" (fun r ->
            match r with
            | Error _ -> ()
            | Ok conn ->
              let rec go () =
                let t0 = Shell.now sh in
                Shell.request sh conn ~opcode:1 (bytes_of 64) (fun _ ->
                    Stats.Histogram.record rtts (Shell.now sh - t0);
                    go ())
              in
              go ()));
    Sim.run_for sim 60_000;
    let added = Monitor.added_latency (Kernel.monitor k 1) in
    (p50 rtts, Stats.Histogram.mean added)
  in
  let checks = [ 1; 2; 4; 8 ] in
  let results =
    parallel_map
      (fun f -> f ())
      ((fun () -> run ~enforce:false ~check:0)
      :: List.map (fun check () -> run ~enforce:true ~check) checks)
  in
  let raw_rtt, raw_add = List.hd results in
  let rows =
    List.map2
      (fun check (rtt, add) ->
        [ Printf.sprintf "enforce, %d-cycle check" check;
          i rtt; f1 add; Printf.sprintf "+%d cyc (%.0f%%)" (rtt - raw_rtt)
            (100.0 *. float_of_int (rtt - raw_rtt) /. float_of_int raw_rtt) ])
      checks (List.tl results)
  in
  table
    [ "configuration"; "RTT p50 (cyc)"; "monitor latency (cyc)"; "vs raw NoC" ]
    ([ [ "raw NoC (no monitor)"; i raw_rtt; f1 raw_add; "-" ] ] @ rows)

let e1_throughput () =
  subhead "E1c: egress throughput under policing (64 B messages, 6 flits)";
  let run ~enforce ~rate =
    let monitor =
      { Monitor.default_config with Monitor.enforce; rate; burst = 64 }
    in
    let sim, k = mk_kernel ~monitor () in
    Kernel.install k ~tile:2 (Accels.echo ());
    with_tile k ~tile:1 ~delay:500 (fun sh ->
        Shell.connect sh ~service:"echo" (fun r ->
            match r with
            | Error _ -> ()
            | Ok conn ->
              (* A flood sender is never quiescent: its drops count. *)
              Sim.add_clocked (Shell.sim sh) (fun () ->
                  Shell.send_data sh conn ~opcode:1 (bytes_of 64);
                  Sim.Busy)));
    Sim.run_for sim 20_000;
    float_of_int (Monitor.msgs_out (Kernel.monitor k 1)) /. 20_000.0
  in
  let tputs =
    parallel_map
      (fun f -> f ())
      [
        (fun () -> run ~enforce:false ~rate:1.0);
        (fun () -> run ~enforce:true ~rate:12.0);
        (fun () -> run ~enforce:true ~rate:3.0);
        (fun () -> run ~enforce:true ~rate:0.6);
      ]
  in
  table
    [ "configuration"; "sustained msgs/cycle" ]
    (List.map2
       (fun name v -> [ name; f2 v ])
       [ "no policing (raw)"; "bucket 12 flits/cyc (headroom)";
         "bucket 3 flits/cyc"; "bucket 0.6 flits/cyc (tight)" ]
       tputs)

let e1 () =
  header "E1" "per-tile monitor overhead (paper open question Q1)";
  e1_area ();
  e1_latency ();
  e1_throughput ()

(* ------------------------------------------------------------------ *)
(* E2 — direct-attached vs host-mediated *)

let kv_cost_model len = 16 + (len / 16) + 60 (* compute + DRAM service *)

let e2_direct ~value_bytes ~concurrency ~duration =
  let sim = Sim.create () in
  let board = Board.create sim in
  let kv_b, _ = Kv.behavior () in
  (match Board.user_tiles board with
  | t :: _ -> Kernel.install board.Board.kernel ~tile:t kv_b
  | [] -> ());
  let client = Board.client board ~port:1 ~gbps:10.0 () in
  let value = bytes_of value_bytes in
  let gen n =
    if n = 1 then Kv.Proto.encode_req (Kv.Proto.Put ("hot", value))
    else Kv.Proto.encode_req (Kv.Proto.Get "hot")
  in
  Sim.after sim 2_000 (fun () ->
      Client.start_closed client
        { Client.service = "kv"; op = Kv.Proto.opcode; gen }
        ~concurrency);
  Sim.run_for sim duration;
  Client.stop client;
  let lat = Client.latency client in
  let served = Client.completed client in
  (* Energy: accelerator cost model + ~100 cycles of OS/NoC activity per
     request; all on the FPGA. *)
  let fpga_cycles = served * (kv_cost_model value_bytes + 100) in
  let net_bytes = served * 2 * (value_bytes + 80) in
  let uj =
    Energy.direct_uj ~fpga_cycles ~net_bytes ()
    /. float_of_int (max 1 served)
  in
  (p50 lat, p99 lat, served, uj)

let e2_hosted ~value_bytes ~concurrency ~duration =
  let sim = Sim.create () in
  let sw = Switch.create sim ~nports:4 ~latency:250 in
  let attach port =
    let link = Link.create sim ~bytes_per_cycle:5.0 ~prop_cycles:125 in
    Switch.attach sw ~port link Link.B;
    Mac.create sim Mac.Gen_10g link Link.A
  in
  let server_mac = attach 0 and client_mac = attach 1 in
  let store : (string, bytes) Hashtbl.t = Hashtbl.create 64 in
  let handler _op body =
    match Kv.Proto.decode_req body with
    | Ok (Kv.Proto.Put (k, v)) ->
      Hashtbl.replace store k v;
      Kv.Proto.encode_resp Kv.Proto.Stored
    | Ok (Kv.Proto.Get k) ->
      (match Hashtbl.find_opt store k with
      | Some v -> Kv.Proto.encode_resp (Kv.Proto.Found v)
      | None -> Kv.Proto.encode_resp Kv.Proto.Not_found)
    | Ok (Kv.Proto.Del k) ->
      Hashtbl.remove store k;
      Kv.Proto.encode_resp Kv.Proto.Deleted
    | Error e -> Kv.Proto.encode_resp (Kv.Proto.Failed e)
  in
  let server =
    Hosted.create sim Hosted.default_config ~mac:server_mac ~my_mac:0xAA
      ~accel_cycles:(fun len -> kv_cost_model len)
      ~handler
  in
  let client = Client.create sim ~mac:client_mac ~my_mac:0xBB ~server_mac:0xAA in
  let value = bytes_of value_bytes in
  let gen n =
    if n = 1 then Kv.Proto.encode_req (Kv.Proto.Put ("hot", value))
    else Kv.Proto.encode_req (Kv.Proto.Get "hot")
  in
  Sim.after sim 2_000 (fun () ->
      Client.start_closed client
        { Client.service = "kv"; op = Kv.Proto.opcode; gen }
        ~concurrency);
  Sim.run_for sim duration;
  Client.stop client;
  let served = max 1 (Hosted.served server) in
  let uj =
    Energy.hosted_uj
      ~cpu_cycles:(Hosted.host_busy_cycles server + (served * 2 * Hosted.default_config.Hosted.nic_cycles))
      ~accel_cycles:(Hosted.accel_busy_cycles server)
      ~pcie_bytes:(served * 2 * value_bytes)
      ~net_bytes:(served * 2 * (value_bytes + 80))
      ()
    /. float_of_int served
  in
  let lat = Client.latency client in
  (p50 lat, p99 lat, Client.completed client, uj)

let e2 () =
  header "E2" "direct-attached Apiary vs host-mediated (Coyote-style) KV";
  let duration = 400_000 in
  let combos =
    List.concat_map
      (fun value_bytes ->
        List.map (fun concurrency -> (value_bytes, concurrency)) [ 1; 4; 16 ])
      [ 64; 1024 ]
  in
  (* Each direct and hosted run is an independent sim: 12 parallel tasks. *)
  let results =
    parallel_map
      (fun f -> f ())
      (List.concat_map
         (fun (value_bytes, concurrency) ->
           [ (fun () -> e2_direct ~value_bytes ~concurrency ~duration);
             (fun () -> e2_hosted ~value_bytes ~concurrency ~duration) ])
         combos)
  in
  let rec pair = function
    | d :: h :: rest -> (d, h) :: pair rest
    | _ -> []
  in
  let rows =
    List.map2
      (fun (value_bytes, concurrency) ((dp50, dp99, dn, duj), (hp50, hp99, hn, huj)) ->
        [
          i value_bytes;
          i concurrency;
          f1 (us_of_cycles dp50);
          f1 (us_of_cycles dp99);
          f1 (us_of_cycles hp50);
          f1 (us_of_cycles hp99);
          f2 (float_of_int hp50 /. float_of_int (max 1 dp50));
          f1 (throughput_per_sec ~count:dn ~cycles:duration /. 1000.0);
          f1 (throughput_per_sec ~count:hn ~cycles:duration /. 1000.0);
          f2 duj;
          f2 huj;
        ])
      combos (pair results)
  in
  table
    [ "val B"; "conc"; "direct p50us"; "p99us"; "hosted p50us"; "p99us";
      "lat ratio"; "direct kops"; "hosted kops"; "direct uJ"; "hosted uJ" ]
    rows

(* ------------------------------------------------------------------ *)
(* E3 — NoC scalability with tile count *)

let e3 () =
  header "E3" "NoC scalability: latency and saturation vs mesh size";
  (* Under APIARY_PAR=mesh each standalone mesh is striped by columns
     (up to 4 stripes, one Par_sim member each) with the router link's
     one-cycle latency as lookahead; the generator is replicated per
     stripe with an identical seed, so the injected stream — and every
     result — is byte-identical to the monolithic run. Returns the mesh
     plus run/stop/done hooks the measurement drives. *)
  let mk_mesh n ~seed ~rate ~pattern =
    let cfg = { Mesh.default_config with Mesh.cols = n; rows = n } in
    match par_mode () with
    | `Mesh when n >= 2 ->
      (* Column stripes only ever talk to adjacent stripes, so the mesh
         engine synchronizes neighbor-to-neighbor instead of through a
         global barrier. *)
      let eng =
        Par_sim.create ~mode:Par_sim.Par ~sync:Par_sim.Neighbor ~lookahead:1
          ~n:(min 4 n) ()
      in
      let mesh : int Mesh.t = Mesh.create ~engine:eng (Par_sim.sim eng 0) cfg in
      let gens =
        List.init (Mesh.stripes mesh) (fun s ->
            Traffic.start mesh ~rng:(Rng.create ~seed) ~pattern ~rate
              ~payload_bytes:32 ~stripe:s ~payload:0 ())
      in
      ( mesh,
        (fun c -> Par_sim.run_for eng c),
        (fun () -> List.iter Traffic.stop_gen gens),
        fun () -> Par_sim.shutdown eng )
    | _ ->
      let sim = Sim.create () in
      let mesh : int Mesh.t = Mesh.create sim cfg in
      let gen =
        Traffic.start mesh ~rng:(Rng.create ~seed) ~pattern ~rate
          ~payload_bytes:32 ~payload:0 ()
      in
      ( mesh,
        (fun c -> Sim.run_for sim c),
        (fun () -> Traffic.stop_gen gen),
        fun () -> () )
  in
  let low_load_latency n pattern =
    let mesh, run, stop, finish = mk_mesh n ~seed:3 ~rate:0.002 ~pattern in
    run 30_000;
    stop ();
    run 5_000;
    finish ();
    p50 (Mesh.latency mesh)
  in
  let saturation n pattern =
    let mesh, run, stop, finish = mk_mesh n ~seed:4 ~rate:0.5 ~pattern in
    run 30_000;
    stop ();
    finish ();
    (* Delivered flits per cycle per tile in the measured window. *)
    float_of_int (Mesh.packets_delivered mesh) *. 3.0 /. 30_000.0 /. float_of_int (n * n)
  in
  let sizes = [ 2; 4; 6; 8 ] in
  (* 12 independent sims (3 measurements x 4 mesh sizes); each task
     returns its formatted cell, rows are assembled in order afterwards.
     With the parallel engine inside each mesh, the sweep itself runs
     serially — the domains are already spoken for. *)
  let e3_map f items =
    if par_mode () = `Mesh then List.map f items else parallel_map f items
  in
  let cells =
    e3_map
      (fun f -> f ())
      (List.concat_map
         (fun n ->
           [ (fun () -> i (low_load_latency n Traffic.Uniform));
             (fun () -> f2 (saturation n Traffic.Uniform));
             (fun () ->
               f2 (saturation n (Traffic.Hotspot (Coord.make (n / 2) (n / 2), 0.5))));
           ])
         sizes)
  in
  let rows =
    List.mapi
      (fun idx n ->
        [
          Printf.sprintf "%dx%d" n n;
          i (n * n);
          List.nth cells (3 * idx);
          List.nth cells ((3 * idx) + 1);
          List.nth cells ((3 * idx) + 2);
        ])
      sizes
  in
  table
    [ "mesh"; "tiles"; "p50 latency @ low load (cyc)";
      "uniform sat. (flits/cyc/tile)"; "hotspot sat." ]
    rows;
  subhead "physical interfaces per tile: direct-wired vs NoC (128-bit data)";
  let rows =
    List.map
      (fun services ->
        let d = Direct_wired.direct ~tiles:16 ~services ~bus_bits:128 in
        let nc = Direct_wired.noc ~tiles:16 ~services ~flit_bits:128 in
        [
          i services;
          i d.Direct_wired.ports_per_tile;
          commas d.Direct_wired.total_wires;
          i d.Direct_wired.rewire_on_add_service;
          i nc.Direct_wired.ports_per_tile;
          commas nc.Direct_wired.total_wires;
          i nc.Direct_wired.rewire_on_add_service;
        ])
      [ 2; 4; 8; 16 ]
  in
  table
    [ "services"; "direct ports/tile"; "direct wires"; "rewire-on-add";
      "NoC ports/tile"; "NoC wires"; "rewire-on-add" ]
    rows

(* ------------------------------------------------------------------ *)
(* E4 — isolation under attack *)

let e4_flood ~attack ~enforce ~tight =
  (* Victim echo service at tile 5; a well-behaved customer at tile 2
     sends a request every 400 cycles; the attacker at tile 6 floods the
     victim with 1 KiB messages through a legitimate connection. *)
  let overrides =
    if tight then
      [ (6, { Monitor.default_config with Monitor.enforce; rate = 0.2; burst = 64 }) ]
    else []
  in
  let monitor = { Monitor.default_config with Monitor.enforce } in
  let sim, k = mk_kernel ~monitor ~overrides () in
  Kernel.install k ~tile:5 (Accels.echo ~cost:20 ());
  if attack then
    Kernel.install k ~tile:6
      (Faulty.wrap
         [ Faulty.Flood_via_conn_at { at = 4_000; service = "echo"; payload_bytes = 1024 } ]
         (Shell.behavior "attacker"));
  let lat = Stats.Histogram.create "victim" in
  with_tile k ~tile:2 ~delay:500 (fun sh ->
      Shell.connect sh ~service:"echo" (fun r ->
          match r with
          | Error _ -> ()
          | Ok conn ->
            Sim.every (Shell.sim sh) 400 (fun () ->
                let t0 = Shell.now sh in
                Shell.request sh conn ~opcode:1 (bytes_of 64) (fun r ->
                    if Result.is_ok r then
                      Stats.Histogram.record lat (Shell.now sh - t0)))));
  Sim.run_for sim 100_000;
  (p50 lat, p99 lat, Stats.Histogram.count lat)

let e4 () =
  header "E4" "isolation: attacks from a co-tenant tile";
  subhead "E4a: wild (capability-less) sends into a victim tile";
  let wild ~enforce =
    let monitor = { Monitor.default_config with Monitor.enforce } in
    let sim, k = mk_kernel ~monitor () in
    let got = ref 0 in
    Kernel.install k ~tile:5
      (Shell.behavior "victim" ~on_message:(fun _ m ->
           match m.Message.kind with Message.Data _ -> incr got | _ -> ()));
    with_tile k ~tile:6 ~delay:500 (fun sh ->
        for _ = 1 to 50 do
          Shell.send_raw sh ~dst:{ Message.tile = 5; ep = 1 } ~opcode:0xBAD (bytes_of 64)
        done);
    Sim.run_for sim 20_000;
    (!got, Monitor.denied (Kernel.monitor k 6))
  in
  let d_on, den_on = wild ~enforce:true in
  let d_off, den_off = wild ~enforce:false in
  table
    [ "config"; "delivered to victim"; "denied at source" ]
    [
      [ "enforcement on"; i d_on; i den_on ];
      [ "enforcement off"; i d_off; i den_off ];
    ];
  subhead "E4b: message flood through a legitimate connection (victim RPC latency)";
  let base50, base99, basen = e4_flood ~attack:false ~enforce:true ~tight:false in
  let off50, off99, offn = e4_flood ~attack:true ~enforce:false ~tight:false in
  let gen50, gen99, genn = e4_flood ~attack:true ~enforce:true ~tight:false in
  let tgt50, tgt99, tgtn = e4_flood ~attack:true ~enforce:true ~tight:true in
  table
    [ "config"; "victim p50 (cyc)"; "p99 (cyc)"; "completed" ]
    [
      [ "no attack"; i base50; i base99; i basen ];
      [ "flood, no enforcement"; i off50; i off99; i offn ];
      [ "flood, default bucket (4 fl/cyc)"; i gen50; i gen99; i genn ];
      [ "flood, tight bucket (0.2 fl/cyc)"; i tgt50; i tgt99; i tgtn ];
    ];
  subhead "E4c: forged-capability DRAM write over a co-tenant KV store";
  let stomp ~enforce =
    let monitor = { Monitor.default_config with Monitor.enforce } in
    let sim, k = mk_kernel ~monitor () in
    let kv_b, kv_stats = Kv.behavior () in
    Kernel.install k ~tile:1 kv_b;
    Kernel.install k ~tile:6
      (Faulty.wrap
         [ Faulty.Mem_stomp_at { at = 20_000; addr = 0; len = 8192 } ]
         (Shell.behavior "tenant"));
    let corrupted_reads = ref 0 and clean_reads = ref 0 in
    with_tile k ~tile:2 ~delay:500 (fun sh ->
        Shell.connect sh ~service:"kv" (fun r ->
            match r with
            | Error _ -> ()
            | Ok conn ->
              let req r cb =
                Shell.request sh conn ~opcode:Kv.Proto.opcode (Kv.Proto.encode_req r)
                  (fun x ->
                    match x with
                    | Ok m -> cb (Kv.Proto.decode_resp m.Message.payload)
                    | Error _ -> ())
              in
              req (Kv.Proto.Put ("data", bytes_of 64)) (fun _ ->
                  Sim.every (Shell.sim sh) 1000 (fun () ->
                      req (Kv.Proto.Get "data") (fun r ->
                          match r with
                          | Ok (Kv.Proto.Found _) -> incr clean_reads
                          | Ok (Kv.Proto.Failed _) -> incr corrupted_reads
                          | _ -> ())))));
    Sim.run_for sim 60_000;
    (!clean_reads, !corrupted_reads, kv_stats.Kv.corruptions,
     Monitor.denied (Kernel.monitor k 6))
  in
  let c_on = stomp ~enforce:true and c_off = stomp ~enforce:false in
  let row name (clean, corrupt, detected, denied) =
    [ name; i clean; i corrupt; i detected; i denied ]
  in
  table
    [ "config"; "clean reads"; "failed reads"; "corruptions detected"; "stomps denied" ]
    [ row "enforcement on" c_on; row "enforcement off" c_off ];
  subhead "E4d: per-connection rate limits (receiver-set, sender-enforced)";
  (* The victim grants untrusted peers only 0.3 flits/cycle. The attacker
     floods through that connection while also running legitimate traffic
     to another service from the same tile: only the flood is squeezed. *)
  let per_conn ~limited =
    let monitor =
      { Monitor.default_config with Monitor.rate = 1000.0; burst = 100_000;
        egress_classes = 2 }
    in
    let sim, k = mk_kernel ~monitor () in
    Kernel.install k ~tile:5
      (Shell.behavior "victim"
         ~on_boot:(fun sh ->
           if limited then
             Shell.set_grant_policy sh (fun src ->
                 (* Tile 2 is the victim's trusted frontend; others are
                    rate-limited at grant time. *)
                 if src.Message.tile = 2 then Shell.Accept
                 else Shell.Accept_limited { rate = 0.3; burst = 32 });
           Shell.register_service sh "victim")
         ~on_message:(fun sh msg ->
           match msg.Message.kind with
           | Message.Data { opcode } when msg.Message.corr > 0 ->
             Shell.busy sh 20;
             Shell.respond sh msg ~opcode Bytes.empty
           | _ -> ()));
    let sidecount = ref 0 in
    Kernel.install k ~tile:9
      (Shell.behavior "side"
         ~on_boot:(fun sh -> Shell.register_service sh "side")
         ~on_message:(fun _ m ->
           match m.Message.kind with Message.Data _ -> incr sidecount | _ -> ()));
    (* Attacker: flood victim on class 0, legitimate side traffic class 1. *)
    Kernel.install k ~tile:6
      (Shell.behavior "attacker" ~on_boot:(fun sh ->
           Sim.after (Shell.sim sh) 500 (fun () ->
               Shell.connect sh ~service:"victim" (fun r ->
                   match r with
                   | Error _ -> ()
                   | Ok vconn ->
                     Shell.connect sh ~service:"side" (fun r ->
                         match r with
                         | Error _ -> ()
                         | Ok sconn ->
                           (* Flood + periodic side traffic: never
                              quiescent, its drop counts are measured. *)
                           Sim.add_clocked (Shell.sim sh) (fun () ->
                               Shell.send_data sh vconn ~opcode:1 ~cls:0
                                 (bytes_of 1024);
                               if Shell.now sh mod 100 = 0 then
                                 Shell.send_data sh sconn ~opcode:2 ~cls:1
                                   (bytes_of 32);
                               Sim.Busy))))));
    (* Victim's real customer. *)
    let lat = Stats.Histogram.create "cust" in
    with_tile k ~tile:2 ~delay:500 (fun sh ->
        Shell.connect sh ~service:"victim" (fun r ->
            match r with
            | Error _ -> ()
            | Ok conn ->
              Sim.every (Shell.sim sh) 400 (fun () ->
                  let t0 = Shell.now sh in
                  Shell.request sh conn ~opcode:1 (bytes_of 64) (fun r ->
                      if Result.is_ok r then
                        Stats.Histogram.record lat (Shell.now sh - t0)))));
    Sim.run_for sim 100_000;
    (p50 lat, p99 lat, Monitor.msgs_out (Kernel.monitor k 6), !sidecount)
  in
  let u50, u99, uout, uside = per_conn ~limited:false in
  let l50, l99, lout, lside = per_conn ~limited:true in
  table
    [ "victim policy"; "customer p50"; "p99"; "attacker msgs out"; "attacker legit msgs" ]
    [
      [ "unlimited grants"; i u50; i u99; i uout; i uside ];
      [ "0.3 fl/cyc per untrusted conn"; i l50; i l99; i lout; i lside ];
    ]

(* ------------------------------------------------------------------ *)
(* E5 — segments+capabilities vs paged translation *)

let e5 () =
  header "E5" "memory isolation: segments+capabilities vs paging";
  subhead "E5a: allocation on a 4 MiB region (accelerator-sized objects, 30% churn)";
  let region = 4 * 1024 * 1024 in
  (* Accelerator allocations skew small (descriptors, line buffers) with
     occasional large frame/model buffers — the "flexibility in
     allocation sizes" point of §4.6. *)
  let mk_sizes () =
    let rng = Rng.create ~seed:5 in
    fun () ->
      let r = Rng.float rng in
      if r < 0.80 then Rng.int_in rng 16 1536
      else if r < 0.95 then Rng.int_in rng 4096 65536
      else Rng.int_in rng 131072 524288
  in
  (* Returns (allocs before OOM, live requested fraction, consumed
     fraction of the region, waste = consumed-but-not-requested,
     largest single request still satisfiable at OOM). *)
  let drive alloc free consumed_bytes max_alloc =
    let rng = Rng.create ~seed:6 in
    let next_size = mk_sizes () in
    let live = ref [] in
    let requested = ref 0 in
    let n = ref 0 in
    let stop = ref false in
    while not !stop do
      let size = next_size () in
      match alloc size with
      | Some handle ->
        incr n;
        requested := !requested + size;
        live := (handle, size) :: !live;
        if Rng.chance rng 0.3 then begin
          match !live with
          | [] -> ()
          | l ->
            let idx = Rng.int rng (List.length l) in
            let (h, sz) = List.nth l idx in
            live := List.filteri (fun j _ -> j <> idx) l;
            requested := !requested - sz;
            free h sz
        end
      | None -> stop := true
    done;
    let consumed = consumed_bytes () in
    let frac x = float_of_int x /. float_of_int region in
    (!n, frac !requested, frac consumed,
     float_of_int (consumed - !requested) /. float_of_int (max 1 consumed),
     max_alloc ())
  in
  let seg policy =
    let a = Seg_alloc.create ~base:0 ~size:region policy in
    drive
      (fun sz -> match Seg_alloc.alloc a ~align:16 sz with Ok b -> Some b | Error _ -> None)
      (fun b _ -> Seg_alloc.free a b)
      (fun () -> region - Seg_alloc.largest_free a)
      (fun () -> Seg_alloc.largest_free a)
  in
  let paged () =
    let pa = Page_alloc.create ~base:0 ~size:region ~page_bytes:4096 in
    let sp = Page_alloc.Space.create pa ~tlb_entries:64 ~walk_cycles:20 in
    drive
      (fun sz -> match Page_alloc.Space.map sp sz with Ok v -> Some v | Error _ -> None)
      (fun v sz -> Page_alloc.Space.unmap sp ~vbase:v ~len:sz)
      (fun () -> Page_alloc.Space.mapped_bytes sp)
      (fun () -> Page_alloc.free_frames pa * Page_alloc.page_bytes pa)
  in
  let row name (n, req, cons, waste, biggest) =
    [ name; i n; pct req; pct cons; pct waste; commas biggest ]
  in
  table
    [ "allocator"; "allocs before OOM"; "live requested"; "consumed"; "waste";
      "max request at OOM (B)" ]
    [
      row "segments, first-fit" (seg Seg_alloc.First_fit);
      row "segments, best-fit" (seg Seg_alloc.Best_fit);
      row "4 KiB pages" (paged ());
    ];
  Printf.printf
    "\n(pages satisfy a larger worst-case request by scattering frames, at the\n cost of page-rounding waste and the translation machinery below — the\n trade §4.6 weighs before choosing segments)\n";
  subhead "E5b: per-access translation cost (100k accesses)";
  let page_cost ~spread =
    let pa = Page_alloc.create ~base:0 ~size:region ~page_bytes:4096 in
    let sp = Page_alloc.Space.create pa ~tlb_entries:64 ~walk_cycles:20 in
    let v = Result.get_ok (Page_alloc.Space.map sp (spread * 4096)) in
    let rng = Rng.create ~seed:7 in
    let total = ref 0 in
    for _ = 1 to 100_000 do
      let addr = v + (Rng.int rng spread * 4096) in
      match Page_alloc.Space.translate sp addr with
      | Ok (_, c) -> total := !total + c
      | Error `Fault -> ()
    done;
    float_of_int !total /. 100_000.0
  in
  table
    [ "mechanism"; "working set"; "avg cycles/access" ]
    [
      [ "segment bounds check"; "any"; "1.00" ];
      [ "pages, 64-entry TLB"; "32 pages (fits)"; f2 (page_cost ~spread:32) ];
      [ "pages, 64-entry TLB"; "256 pages"; f2 (page_cost ~spread:256) ];
      [ "pages, 64-entry TLB"; "1024 pages"; f2 (page_cost ~spread:1024) ];
    ];
  subhead "E5c: translation hardware area (per tile)";
  table
    [ "mechanism"; "LUTs (est.)" ]
    [
      [ "segment capability check (base+bounds)"; "180" ];
      [ "64-entry TLB + page walker"; i ((64 * 8) + 300) ];
    ]

(* ------------------------------------------------------------------ *)
(* E6 — fail-stop vs preemptible contexts *)

let e6_run ~preemptible =
  let sim, k = mk_kernel () in
  let behavior, _api = Multi_ctx.behavior ~nctx:4 ~preemptible () in
  Kernel.install k ~tile:5 behavior;
  (* Restart policy: the management plane replaces a fail-stopped tile
     after a detection+rebuild delay. *)
  Kernel.on_fault k (fun tile _reason ->
      if tile = 5 then
        Sim.after sim 10_000 (fun () ->
            let b, _ = Multi_ctx.behavior ~nctx:4 ~preemptible () in
            Kernel.restart_tile k ~tile:5 b));
  let ok = Array.make 4 0 in
  let err = Array.make 4 0 in
  let poison_at = 40_000 in
  let window = 40_000 in
  let after_ok = Array.make 4 0 in
  (* One client tile per context, each sending every 200 cycles, with
     reconnect-on-failure. *)
  let client ctx tile =
    let reconnecting = ref false in
    let poisoned = ref false in
    let conn_ref = ref None in
    let rec reconnect sh =
      if not !reconnecting then begin
        reconnecting := true;
        Sim.after (Shell.sim sh) 1_000 (fun () ->
            Shell.connect sh ~service:"mctx" (fun r ->
                reconnecting := false;
                match r with
                | Ok c -> conn_ref := Some c
                | Error _ -> reconnect sh))
      end
    in
    with_tile k ~tile ~delay:500 (fun sh ->
        reconnect sh;
        Sim.every (Shell.sim sh) 200 (fun () ->
            match !conn_ref with
            | None -> ()
            | Some conn ->
              let poison = Shell.now sh >= poison_at && ctx = 0 && not !poisoned in
              if poison then poisoned := true;
              Shell.request sh conn ~opcode:Multi_ctx.Proto.opcode
                (Multi_ctx.Proto.encode_req
                   { Multi_ctx.Proto.ctx; poison; data = bytes_of 32 })
                (fun r ->
                  match r with
                  | Ok m ->
                    (match Multi_ctx.Proto.decode_resp m.Message.payload with
                    | Ok (Multi_ctx.Proto.Accum _) ->
                      ok.(ctx) <- ok.(ctx) + 1;
                      if Shell.now sh > poison_at then
                        after_ok.(ctx) <- after_ok.(ctx) + 1
                    | _ -> err.(ctx) <- err.(ctx) + 1)
                  | Error _ ->
                    err.(ctx) <- err.(ctx) + 1;
                    conn_ref := None;
                    reconnect sh)))
  in
  client 0 1;
  client 1 2;
  client 2 6;
  client 3 9;
  Sim.run_for sim (poison_at + window);
  let survivors = after_ok.(1) + after_ok.(2) + after_ok.(3) in
  let ideal = 3 * window / 200 in
  (survivors, ideal, err.(0) + err.(1) + err.(2) + err.(3), List.length (Kernel.faults k))

let e6 () =
  header "E6" "fault handling: fail-stop tile vs preemptible contexts";
  let s_p, ideal, err_p, faults_p = e6_run ~preemptible:true in
  let s_f, _, err_f, faults_f = e6_run ~preemptible:false in
  table
    [ "model"; "survivor ops after poison"; "of ideal"; "errors"; "tile fail-stops" ]
    [
      [ "preemptible contexts"; i s_p; pct (float_of_int s_p /. float_of_int ideal);
        i err_p; i faults_p ];
      [ "concurrent-only (fail-stop)"; i s_f; pct (float_of_int s_f /. float_of_int ideal);
        i err_f; i faults_f ];
    ];
  Printf.printf
    "\n(poison at cycle 40k; fail-stopped tile is rebuilt by the management plane\n after 10k cycles, but its session state is lost and clients must reconnect)\n";
  subhead "E6b: context swapping — 16 sessions on fewer resident slots";
  (* Once state is externalizable, the OS can oversubscribe the
     accelerator: victims spill to DRAM through capability-checked writes.
     Zipf-popular sessions mean a small resident set covers most traffic. *)
  let swap_run ~resident =
    let sim, k = mk_kernel () in
    let behavior, st = Ctx_manager.behavior ~logical:16 ~resident () in
    Kernel.install k ~tile:5 behavior;
    let rng = Rng.create ~seed:13 in
    let completed = ref 0 in
    with_tile k ~tile:2 ~delay:500 (fun sh ->
        (* The manager registers only after initializing all context
           state in DRAM; retry until it appears. *)
        let rec connect_retry () =
          Shell.connect sh ~service:"ctxmgr" (fun r ->
              match r with
              | Error _ -> Sim.after (Shell.sim sh) 500 connect_retry
              | Ok conn ->
                let rec go () =
                  let ctx = Rng.zipf rng ~n:16 ~theta:0.9 in
                Shell.request sh conn ~opcode:Multi_ctx.Proto.opcode
                  (Multi_ctx.Proto.encode_req
                     { Multi_ctx.Proto.ctx; poison = false; data = bytes_of 32 })
                    (fun r ->
                      if Result.is_ok r then incr completed;
                      go ())
                in
                go ())
        in
        connect_retry ());
    Sim.run_for sim 200_000;
    (!completed, st)
  in
  let rows =
    List.map
      (fun resident ->
        let n, st = swap_run ~resident in
        let hit =
          float_of_int st.Ctx_manager.resident_hits
          /. float_of_int (max 1 (st.Ctx_manager.resident_hits + st.Ctx_manager.swap_ins))
        in
        [ i resident; i n; pct hit; i st.Ctx_manager.swap_ins;
          i st.Ctx_manager.swap_outs ])
      [ 16; 8; 4; 2; 1 ]
  in
  table
    [ "resident slots"; "ops completed"; "residency hit rate"; "swap-ins"; "swap-outs" ]
    rows

(* ------------------------------------------------------------------ *)
(* E7 — scale-out of a replicated service *)

let e7_run ~replicas ~pipeline ~duration =
  let sim = Sim.create () in
  let board = Board.create sim in
  let tiles = Board.user_tiles board in
  (match tiles with
  | lb :: comp :: rest when List.length rest >= replicas ->
    if pipeline then begin
      (* Full §2 pipeline: N encode stages share ONE compressor. *)
      if replicas = 1 then
        Video_pipeline.install board.Board.kernel ~encoder_tile:lb
          ~compressor_tile:comp
      else
        Video_pipeline.install_replicated board.Board.kernel ~lb_tile:lb
          ~encoder_tiles:(List.filteri (fun idx _ -> idx < replicas) rest)
          ~compressor_tile:comp
    end
    else begin
      (* Pure scale-out: N standalone encoders behind the balancer. *)
      let backends =
        List.filteri (fun idx _ -> idx < replicas) (comp :: rest)
        |> List.mapi (fun idx tile ->
               let service = Printf.sprintf "enc%d" idx in
               Kernel.install board.Board.kernel ~tile
                 (Accels.video_encoder ~service ());
               service)
      in
      Kernel.install board.Board.kernel ~tile:lb
        (Accels.load_balancer ~service:"vpipe" ~backends ())
    end
  | _ -> failwith "not enough tiles");
  let rng = Rng.create ~seed:11 in
  let chunk = Rng.bytes_compressible rng 1024 ~redundancy:0.85 in
  let client = Board.client board ~port:1 ~gbps:100.0 () in
  Sim.after sim 3_000 (fun () ->
      Client.start_closed client
        { Client.service = "vpipe"; op = Accels.op_encode; gen = (fun _ -> chunk) }
        ~concurrency:16);
  Sim.run_for sim duration;
  Client.stop client;
  Client.completed client

let e7 () =
  header "E7" "scale-out: replicated encoders behind a load balancer";
  let duration = 300_000 in
  let replicas = [ 1; 2; 4; 8 ] in
  (* Both sweeps (4 replica counts each) run as one 8-way parallel batch;
     tables render afterwards in the original order. *)
  let counts ~pipeline =
    parallel_map (fun r -> e7_run ~replicas:r ~pipeline ~duration) replicas
  in
  let sweep counts label =
    subhead label;
    let base = max 1 (List.hd counts) in
    let rows =
      List.map2
        (fun r n ->
          [
            i r;
            i n;
            f1 (throughput_per_sec ~count:n ~cycles:duration /. 1000.0);
            f2 (float_of_int n /. float_of_int base);
          ])
        replicas counts
    in
    table [ "replicas"; "chunks"; "kchunks/s"; "speedup" ] rows
  in
  sweep (counts ~pipeline:false)
    "E7a: standalone encoder replicas (pure scale-out)";
  sweep (counts ~pipeline:true)
    "E7b: full pipeline, replicas share ONE compressor (Amdahl cap)";
  Printf.printf
    "\n(E7b's plateau is the shared third-party compressor saturating —\n composition makes the bottleneck stage visible and independently scalable)\n"

(* ------------------------------------------------------------------ *)
(* E8 — IPC microbenchmarks *)

let e8 () =
  header "E8" "IPC: RPC round-trip vs payload size and distance";
  let rtt ~dst_tile ~payload =
    let sim, k = mk_kernel () in
    Kernel.install k ~tile:dst_tile (Accels.echo ());
    let h = Stats.Histogram.create "rtt" in
    with_tile k ~tile:1 ~delay:500 (fun sh ->
        Shell.connect sh ~service:"echo" (fun r ->
            match r with
            | Error _ -> ()
            | Ok conn ->
              let rec go () =
                let t0 = Shell.now sh in
                Shell.request sh conn ~opcode:1 (bytes_of payload) (fun _ ->
                    Stats.Histogram.record h (Shell.now sh - t0);
                    go ())
              in
              go ()));
    Sim.run_for sim 100_000;
    p50 h
  in
  let hops dst =
    let a = Coord.of_index ~cols:4 1 and b = Coord.of_index ~cols:4 dst in
    Coord.hops a b
  in
  let dsts = [ 2; 6; 11 ] in
  let rows =
    List.map
      (fun payload ->
        i payload
        :: List.map (fun d -> i (rtt ~dst_tile:d ~payload)) dsts)
      [ 0; 64; 256; 1024; 4096 ]
  in
  table
    ("payload B"
    :: List.map (fun d -> Printf.sprintf "%d hops (cyc)" (hops d)) dsts)
    rows;
  subhead "connection setup (lookup + connect + capability mint)";
  let sim, k = mk_kernel () in
  Kernel.install k ~tile:11 (Accels.echo ());
  let setup = ref 0 in
  with_tile k ~tile:1 ~delay:500 (fun sh ->
      let t0 = Shell.now sh in
      Shell.connect sh ~service:"echo" (fun _ -> setup := Shell.now sh - t0));
  Sim.run_for sim 20_000;
  Printf.printf "connection setup to a 4-hop peer: %d cycles (%.1f us)\n" !setup
    (us_of_cycles !setup)

(* ------------------------------------------------------------------ *)
(* E9 — QoS classes on the fabric *)

let e9 () =
  header "E9" "QoS: priority service latency under background congestion";
  let run ~qos ~background =
    let sim, k = mk_kernel ~qos () in
    Kernel.install k ~tile:5 (Accels.echo ());
    (* Background: four flooders pumping 1 KiB class-0 messages across
       the victim's column. *)
    if background then
      List.iter
        (fun tile ->
          Kernel.install k ~tile
            (Faulty.wrap
               [ Faulty.Flood_via_conn_at
                   { at = 2_000; service = "echo"; payload_bytes = 1024 } ]
               (Shell.behavior "bg")))
        [ 4; 6; 8; 12 ];
    let lat = Stats.Histogram.create "prio" in
    with_tile k ~tile:2 ~delay:500 (fun sh ->
        Shell.connect sh ~service:"echo" (fun r ->
            match r with
            | Error _ -> ()
            | Ok conn ->
              Sim.every (Shell.sim sh) 500 (fun () ->
                  let t0 = Shell.now sh in
                  Shell.request sh conn ~opcode:1 ~cls:1 (bytes_of 32) (fun r ->
                      if Result.is_ok r then
                        Stats.Histogram.record lat (Shell.now sh - t0)))));
    Sim.run_for sim 80_000;
    (p50 lat, p99 lat)
  in
  let b50, b99 = run ~qos:false ~background:false in
  let n50, n99 = run ~qos:false ~background:true in
  let q50, q99 = run ~qos:true ~background:true in
  table
    [ "config"; "priority p50 (cyc)"; "p99 (cyc)" ]
    [
      [ "idle fabric"; i b50; i b99 ];
      [ "congested, no QoS"; i n50; i n99 ];
      [ "congested, VC priority QoS"; i q50; i q99 ];
    ];
  subhead "E9b: monitor egress HOL — a tile serving bulk AND priority traffic";
  (* Fabric QoS cannot help when a tile's own bulk replies head-of-line
     block its priority replies inside the monitor; per-class egress
     queues do. *)
  let self_hol ~classes =
    (* The token bucket is the binding constraint (0.5 flits/cycle), so
       bulk replies drain slowly through the monitor. *)
    let monitor =
      { Monitor.default_config with Monitor.rate = 0.5; burst = 256;
        egress_classes = classes }
    in
    let sim, k = mk_kernel ~monitor ~qos:true () in
    (* One server answers bulk 4 KiB fetches (class 0) and tiny priority
       probes (class 1). *)
    Kernel.install k ~tile:5
      (Shell.behavior "mixed"
         ~on_boot:(fun sh -> Shell.register_service sh "mixed")
         ~on_message:(fun sh msg ->
           match msg.Message.kind with
           | Message.Data { opcode = 1 } ->
             Shell.respond sh msg ~opcode:1 ~cls:0 (bytes_of 1024)
           | Message.Data { opcode = 2 } ->
             Shell.respond sh msg ~opcode:2 ~cls:1 Bytes.empty
           | _ -> ()));
    (* Bulk consumers keep the victim's egress busy but bounded (closed
       loop, 2 outstanding each). *)
    List.iter
      (fun tile ->
        with_tile k ~tile ~delay:500 (fun sh ->
            Shell.connect sh ~service:"mixed" (fun r ->
                match r with
                | Error _ -> ()
                | Ok conn ->
                  let rec fetch () =
                    Shell.request sh conn ~opcode:1 ~cls:0 Bytes.empty (fun _ ->
                        fetch ())
                  in
                  for _ = 1 to 2 do fetch () done)))
      [ 1; 4 ];
    let lat = Stats.Histogram.create "probe" in
    with_tile k ~tile:9 ~delay:500 (fun sh ->
        Shell.connect sh ~service:"mixed" (fun r ->
            match r with
            | Error _ -> ()
            | Ok conn ->
              Sim.every (Shell.sim sh) 300 (fun () ->
                  let t0 = Shell.now sh in
                  Shell.request sh conn ~opcode:2 ~cls:1 Bytes.empty (fun r ->
                      if Result.is_ok r then
                        Stats.Histogram.record lat (Shell.now sh - t0)))));
    Sim.run_for sim 80_000;
    (p50 lat, p99 lat, Stats.Histogram.count lat)
  in
  let s50, s99, sn = self_hol ~classes:1 in
  let c50, c99, cn = self_hol ~classes:2 in
  table
    [ "monitor egress"; "probe p50 (cyc)"; "p99 (cyc)"; "probes ok" ]
    [
      [ "single FIFO"; i s50; i s99; i sn ];
      [ "per-class queues"; i c50; i c99; i cn ];
    ]

(* ------------------------------------------------------------------ *)
(* E10 — partial reconfiguration under load *)

let e10 () =
  header "E10" "partial reconfiguration: service swap under co-tenant load";
  let sim = Sim.create () in
  let board = Board.create sim in
  let kernel = board.Board.kernel in
  let enc_tile, kv_tile =
    match Board.user_tiles board with
    | a :: b :: _ -> (a, b)
    | _ -> failwith "tiles"
  in
  Kernel.install kernel ~tile:enc_tile (Accels.video_encoder ~service:"enc" ());
  let kv_b, _ = Kv.behavior () in
  Kernel.install kernel ~tile:kv_tile kv_b;
  (* Clients for both services. *)
  let enc_client = Board.client board ~port:1 () in
  let kv_client = Board.client board ~port:2 () in
  let bucket = 10_000 in
  let enc_series = Stats.Series.create "enc" ~interval:bucket in
  let kv_series = Stats.Series.create "kv" ~interval:bucket in
  let enc_fail = ref 0 in
  Client.on_response enc_client (fun rsp ->
      if rsp.Netproto.status = Netproto.Ok_resp then
        Stats.Series.record enc_series ~now:(Sim.now sim) 1.0
      else incr enc_fail);
  Client.on_response kv_client (fun rsp ->
      if rsp.Netproto.status = Netproto.Ok_resp then
        Stats.Series.record kv_series ~now:(Sim.now sim) 1.0);
  Sim.after sim 2_000 (fun () ->
      Client.start_closed enc_client
        { Client.service = "enc"; op = Accels.op_encode; gen = (fun _ -> bytes_of 512) }
        ~concurrency:2;
      Client.start_closed kv_client
        {
          Client.service = "kv";
          op = Kv.Proto.opcode;
          gen =
            (fun n ->
              if n mod 2 = 1 then Kv.Proto.encode_req (Kv.Proto.Put ("k", bytes_of 64))
              else Kv.Proto.encode_req (Kv.Proto.Get "k"));
        }
        ~concurrency:2);
  (* Swap the encoder for a new version at t=60k: 800 KiB bitstream at
     8 B/cycle = 100k cycles of PR. *)
  let pr_done = ref 0 in
  Sim.after sim 60_000 (fun () ->
      Kernel.reconfigure kernel ~tile:enc_tile ~bitstream_bytes:800_000
        (Accels.video_encoder ~service:"enc" ~q:3 ())
        ~on_done:(fun () -> pr_done := Sim.now sim));
  Sim.run_for sim 300_000;
  Client.stop enc_client;
  Client.stop kv_client;
  Printf.printf "PR window: cycle 60,000 -> %s (%s us)\n" (commas !pr_done)
    (f1 (us_of_cycles (!pr_done - 60_000)));
  let lookup series t =
    match List.assoc_opt t (Stats.Series.buckets series) with
    | Some v -> int_of_float v
    | None -> 0
  in
  let rows =
    List.map
      (fun t ->
        [
          Printf.sprintf "%dk-%dk" (t / 1000) ((t + bucket) / 1000);
          i (lookup enc_series t);
          i (lookup kv_series t);
        ])
      (List.init 15 (fun idx -> (idx * 2) * bucket))
  in
  table [ "cycles"; "encoder ok/10k"; "co-tenant KV ok/10k" ] rows;
  Printf.printf "\nencoder requests failed or unavailable during PR: %d\n" !enc_fail

(* ------------------------------------------------------------------ *)
(* E11 — remote OS services over the network (paper 6-Q3) *)

let e11 () =
  header "E11" "implementing an OS function in fabric vs on a remote CPU (6-Q3)";
  (* The same control operation served three ways: by a hardware service
     tile on the local NoC, and by a software handler on a remote host
     reached through the network tile (interrupt-driven and polling NIC). *)
  let local_rtt () =
    let sim, k = mk_kernel () in
    Kernel.install k ~tile:5 (Accels.echo ~cost:4 ());
    let h = Stats.Histogram.create "local" in
    with_tile k ~tile:1 ~delay:500 (fun sh ->
        Shell.connect sh ~service:"echo" (fun r ->
            match r with
            | Error _ -> ()
            | Ok conn ->
              let rec go () =
                let t0 = Shell.now sh in
                Shell.request sh conn ~opcode:1 (bytes_of 32) (fun _ ->
                    Stats.Histogram.record h (Shell.now sh - t0);
                    go ())
              in
              go ()));
    Sim.run_for sim 100_000;
    (p50 h, Stats.Histogram.count h)
  in
  let remote_rtt ~nic_cycles =
    let sim = Sim.create () in
    let board = Board.create sim in
    let remote_mac, remote_addr = Board.add_client_port board ~port:2 () in
    let _remote =
      Remote_service.create sim ~mac:remote_mac ~my_mac:remote_addr ~nic_cycles
        ~service_cycles:250
        ~handler:(fun ~service:_ ~op:_ body -> body)
        ()
    in
    let h = Stats.Histogram.create "remote" in
    (match Board.user_tiles board with
    | t :: _ ->
      Kernel.install board.Board.kernel ~tile:t
        (Shell.behavior "caller" ~on_boot:(fun sh ->
             Sim.after (Shell.sim sh) 2_000 (fun () ->
                 Shell.connect sh ~service:"net" (fun r ->
                     match r with
                     | Error _ -> ()
                     | Ok net ->
                       let rec go () =
                         let t0 = Shell.now sh in
                         Netsvc.remote_request sh net ~dst_mac:remote_addr
                           ~service:"ctl" ~op:1 (bytes_of 32) (fun _ ->
                             Stats.Histogram.record h (Shell.now sh - t0);
                             go ())
                       in
                       go ()))))
    | [] -> ());
    Sim.run_for sim 400_000;
    (p50 h, Stats.Histogram.count h)
  in
  let l50, _ = local_rtt () in
  let i50, _ = remote_rtt ~nic_cycles:500 in
  let p50v, _ = remote_rtt ~nic_cycles:75 in
  table
    [ "service placement"; "control-op RTT p50"; "us"; "vs local" ]
    [
      [ "hardware tile on local NoC"; i l50; f1 (us_of_cycles l50); "1.0x" ];
      [ "remote CPU, polling NIC (0.3us)"; i p50v; f1 (us_of_cycles p50v);
        f1 (float_of_int p50v /. float_of_int l50) ^ "x" ];
      [ "remote CPU, interrupt NIC (2us)"; i i50; f1 (us_of_cycles i50);
        f1 (float_of_int i50 /. float_of_int l50) ^ "x" ];
    ];
  Printf.printf
    "\n(a remote-CPU OS service costs two orders of magnitude in latency —\n fine for rare control-plane work such as PR policy or accounting, ruinous\n for data-path functions like allocation or translation: 6-Q3 quantified)\n"

let all () =
  t1 (); fig1 (); e1 (); e2 (); e3 (); e4 (); e5 (); e6 (); e7 (); e8 (); e9 (); e10 (); e11 ()
