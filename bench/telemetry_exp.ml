(* E16 — the in-band telemetry plane, measured honestly.

   E13 pulled counters through the stat service; E15 priced the span
   recorder. E16 turns the remaining omniscient hooks into traffic: a
   push agent on every board harvests Registry deltas and sampled span
   completions into sequence-numbered batches and ships them through
   the board's own uplink (telemetry shares the wire with the
   workload), a rack collector reassembles the streams, and the
   scheduler's SLO feed switches from the client's local hook to the
   collected one.

   - e16a: telemetry byte overhead vs harvest interval, with the
     conservation identity (emitted = delivered + dropped + lost +
     in-flight, per board) checked after every run.
   - e16b: tail-latency/throughput interference, agents off vs on,
     under the E12 KV drill (the <= 2% budget at the default interval).
   - e16c: deliberate congestion — kill the victim's switch port
     mid-run (frames die on the wire, the agent keeps sending) and
     starve the agent queue so drop-oldest fires; the accounting must
     still close to the record, and the collector's gap-detected loss
     must equal the true wire loss.
   - e16d: freshness — push staleness at the collector vs polling the
     E13 stat service over the same network at the same cadence.
   - e16e: the collected SLO feed driving the elastic scheduler's
     autoscaler vs the client-side hook it replaces.

   Every table and artifact is byte-identical between the sequential
   engine and APIARY_PAR=boards: agents run on board simulators, the
   collector wholly on the rack simulator, and only collector/agent
   state is printed (never the global span store, whose insertion
   order is engine-dependent). APIARY_E16_SMALL=1 shrinks durations
   for CI smoke runs. *)

module Sim = Apiary_engine.Sim
module Stats = Apiary_engine.Stats
module Kv = Apiary_accel.Kv
module Accels = Apiary_accel.Accels
module Cluster = Apiary_cluster.Cluster
module Collector = Apiary_cluster.Collector
module Shard_client = Apiary_cluster.Shard_client
module Node = Apiary_cluster.Node
module Statsvc = Apiary_core.Statsvc
module Netproto = Apiary_net.Netproto
module Frame = Apiary_net.Frame
module Mac = Apiary_net.Mac
module Sched = Apiary_sched.Sched
module Placer = Apiary_sched.Placer
module Slo = Apiary_obs.Slo
module Agent = Apiary_obs.Agent
module Span = Apiary_obs.Span
module Registry = Apiary_obs.Registry
open Bench_util

let small () = Sys.getenv_opt "APIARY_E16_SMALL" <> None

(* Like Cluster_exp.with_rack, but does NOT force a monolithic engine
   when --obs is set: E16 runs with spans enabled under
   APIARY_PAR=boards by design, and keeps its output deterministic by
   never exporting the global span store — only agent and collector
   state, which lives on fixed simulators.

   Both paths run the partitioned engine: Par_sim's Seq mode is the
   reference schedule that Par is byte-identical to. A monolithic
   Sim.create is NOT that reference — when a cross-partition frame and
   a locally scheduled event land on the same cycle, the global queue
   orders them by global insertion sequence, while the canonical
   windowed schedule orders flushed posts after local events armed
   earlier in the window. Board handlers are insensitive to that tie,
   but the agent's harvest-at-tick is not: the tie decides whether a
   delivery's counter bump lands in this batch or the next, and under
   e16c's starved-queue drill the difference compounds through
   drop-oldest into visibly different books. Running both sides on the
   canonical schedule makes the byte-identity claim exact rather than
   incidental. *)
let with_rack ~boards ~clients ~duration body =
  let mode, domains =
    match par_mode () with
    | `Boards ->
      let domains =
        match Sys.getenv_opt "APIARY_DOMAINS" with
        | Some s -> ( try max 1 (int_of_string s) with _ -> boards + 1)
        | None -> boards + 1
      in
      (Apiary_engine.Par_sim.Par, domains)
    | `Mesh | `Off -> (Apiary_engine.Par_sim.Seq, 1)
  in
  let eng =
    Apiary_engine.Par_sim.create ~mode ~adaptive:true ~domains
      ~lookahead:Cluster.lookahead ~n:(boards + 1) ()
  in
  let sim = Apiary_engine.Par_sim.sim eng 0 in
  let cluster =
    Cluster.create ~engine:eng sim ~boards ~client_ports:(clients + 1)
  in
  let finish = body sim cluster in
  Apiary_engine.Par_sim.run_until eng duration;
  Apiary_engine.Par_sim.shutdown eng;
  finish ()

(* Spans on with E12's deterministic sampling (serve spans are corr-0,
   so the collector's outcome feed is never thinned), registry fresh. *)
let obs_on () =
  Registry.clear ();
  Span.reset ();
  Span.set_sampling ~head_mod:8 ~slow_cycles:20_000 ();
  Span.set_enabled true

let obs_off () =
  Span.set_enabled false;
  Span.set_sampling ();
  Span.reset ();
  Registry.clear ()

(* Conservation is only readable with the wire empty, so every run
   quiesces its agents ([until]) three periods after the workload stops
   — time to ship the tail — and then coasts another 1_500 cycles
   (several uplink latencies plus serialization) before the engine
   halts. Whatever an agent still holds at the end is then exactly
   "in flight". *)
let quiesce ~stop_at ~period =
  let until = stop_at + (3 * period) in
  (until, until + 1_500)

let write_file path s =
  let oc = open_out path in
  output_string oc s;
  close_out oc

(* One E12-style sharded-KV run with an optional telemetry plane. *)
let kv_run ~boards ~stop_at ~duration ?(extra = fun _ _ -> ()) ~mk_col ~extract
    () =
  obs_on ();
  let r =
    with_rack ~boards ~clients:(boards + 1) ~duration (fun sim cluster ->
        for b = 0 to boards - 1 do
          ignore
            (Cluster.install cluster ~board:b ~service:"kv"
               (fst (Kv.behavior ())))
        done;
        Cluster.register_metrics cluster;
        let col = mk_col cluster in
        let clients =
          List.init boards (fun _ ->
              Shard_client.create cluster ~timeout:20_000 ~service:"kv"
                ~op:Kv.Proto.opcode ~route:Shard_client.By_key
                ~gen:(Cluster_exp.kv_gen 64))
        in
        Sim.after sim 3_000 (fun () ->
            List.iter (fun c -> Shard_client.start c ~concurrency:8) clients);
        Sim.after sim stop_at (fun () -> List.iter Shard_client.stop clients);
        extra sim cluster;
        fun () ->
          let ops =
            List.fold_left (fun a c -> a + Shard_client.completed c) 0 clients
          in
          let r = extract ~ops ~col ~clients in
          (match col with Some c -> Collector.detach c | None -> ());
          r)
  in
  obs_off ();
  r

(* Per-board accounting row pulled from both sides of the wire. *)
type acct = {
  ac_board : int;
  ac_emitted : int;
  ac_delivered : int;
  ac_dropped : int;
  ac_lost : int;  (* sent_records - delivered: true wire loss *)
  ac_detected : int;  (* collector's gap-inferred wire loss *)
  ac_queued : int;
  ac_batches : int;
  ac_bytes : int;  (* batch payload bytes handed to the NIC *)
  ac_backpressure : int;
}

let acct_of col b =
  let a = Collector.agent col b in
  let delivered = Collector.delivered col ~board:b in
  {
    ac_board = b;
    ac_emitted = Agent.emitted a;
    ac_delivered = delivered;
    ac_dropped = Agent.dropped a;
    ac_lost = Agent.sent_records a - delivered;
    ac_detected = Collector.lost_records_detected col ~board:b;
    ac_queued = Agent.queued a;
    ac_batches = Agent.sent_batches a;
    ac_bytes = Agent.sent_bytes a;
    ac_backpressure = Agent.backpressure a;
  }

let conservation_holds rows =
  List.for_all
    (fun r ->
      r.ac_emitted = r.ac_delivered + r.ac_dropped + r.ac_lost + r.ac_queued
      && r.ac_lost = r.ac_detected)
    rows

(* Ethernet cost of one batch frame beyond its payload: header(14) +
   ethertype(2) + FCS(4) + preamble/IPG(20). Batch payloads are far
   above the 46-byte padding floor, so this is exact. *)
let frame_overhead = 40

(* ------------------------------------------------------------------ *)
(* E16a — byte overhead vs harvest interval. *)

type a_row = {
  ar_period : int;
  ar_ops : int;
  ar_records : int;
  ar_batches : int;
  ar_payload : int;
  ar_wire : int;
  ar_pct_uplink : float;  (* of one board's 100G uplink, average *)
  ar_dropped : int;
  ar_conserved : bool;
}

let e16a_run ~boards ~stop_at ~period ~artifacts =
  let until, duration = quiesce ~stop_at ~period in
  kv_run ~boards ~stop_at ~duration
    ~mk_col:(fun cluster ->
      Some
        (Collector.create ~agent_period:period ~agent_until:until
           ~span_cap:262_144 cluster))
    ~extract:(fun ~ops ~col ~clients:_ ->
      let col = Option.get col in
      let rows = List.init boards (acct_of col) in
      let sum f = List.fold_left (fun a r -> a + f r) 0 rows in
      let payload = sum (fun r -> r.ac_bytes) in
      let batches = sum (fun r -> r.ac_batches) in
      let wire = payload + (batches * frame_overhead) in
      if artifacts then begin
        write_file "BENCH_e16_exemplars.json"
          (Collector.exemplars_json_string col);
        write_file "BENCH_e16_trace.json" (Collector.trace_json_string col)
      end;
      {
        ar_period = period;
        ar_ops = ops;
        ar_records = sum (fun r -> r.ac_delivered);
        ar_batches = batches;
        ar_payload = payload;
        ar_wire = wire;
        ar_pct_uplink =
          100.0 *. float_of_int wire
          /. float_of_int (boards * duration * 50 (* B/cycle at 100G *));
        ar_dropped = sum (fun r -> r.ac_dropped);
        ar_conserved = conservation_holds rows;
      })
    ()

(* ------------------------------------------------------------------ *)
(* E16b — interference: the same drill with no agents, agents at the
   default interval, and agents pushed 4x harder. *)

let e16b_run ~boards ~stop_at ~duration ~agent_period =
  kv_run ~boards ~stop_at ~duration
    ~mk_col:(fun cluster ->
      match agent_period with
      | None -> None
      | Some p ->
        Some
          (Collector.create ~agent_period:p ~agent_until:(duration - 1_500)
             cluster))
    ~extract:(fun ~ops ~col:_ ~clients ->
      let lat = Stats.Histogram.create "e16b" in
      List.iter
        (fun c ->
          Stats.Histogram.merge_into ~src:(Shard_client.latency c) ~dst:lat)
        clients;
      (ops, p50 lat, p99 lat))
    ()

(* ------------------------------------------------------------------ *)
(* E16c — congestion drill: genuine wire loss (the victim's switch
   port goes down; its agent keeps flushing into the void) plus agent
   queue starvation (tiny queue, one small frame per tick) so
   drop-oldest fires. The books must still balance. *)

let e16c_run ~boards ~victim ~kill_at ~restore_at ~stop_at =
  let period = 500 in
  let until, duration = quiesce ~stop_at ~period in
  kv_run ~boards ~stop_at ~duration
    ~extra:(fun sim cluster ->
      Sim.after sim kill_at (fun () -> Cluster.kill cluster ~board:victim);
      Sim.after sim restore_at (fun () ->
          Cluster.restore cluster ~board:victim))
    ~mk_col:(fun cluster ->
      Some
        (Collector.create ~agent_period:period ~agent_queue:96
           ~agent_batch_bytes:512 ~agent_max_frames:1 ~agent_until:until
           cluster))
    ~extract:(fun ~ops ~col ~clients:_ ->
      let col = Option.get col in
      let rows = List.init boards (acct_of col) in
      write_file "BENCH_e16_conservation.json"
        (Collector.conservation_json_string col);
      (ops, rows))
    ()

(* ------------------------------------------------------------------ *)
(* E16d — staleness: how old is the freshest board-0 data at the rack,
   push (collector batches) vs pull (polling the E13 stat service over
   the same switch at the same cadence)?

   Pull staleness is time since the polled snapshot was read on the
   board: (now - last response) + half the measured round trip. Push
   staleness is the collector's own accessor (now - newest batch's
   harvest stamp). Both sampled every 500 cycles on the rack sim. *)

type stale = { mutable sum : int; mutable n : int; mutable worst : int }

let observe_stale s v =
  s.sum <- s.sum + v;
  s.n <- s.n + 1;
  if v > s.worst then s.worst <- v

let stale_mean s = if s.n = 0 then 0 else s.sum / s.n

let e16d_run ~boards ~stop_at =
  let period = Agent.default_period in
  let _, duration = quiesce ~stop_at ~period in
  let push = { sum = 0; n = 0; worst = 0 } in
  let pull = { sum = 0; n = 0; worst = 0 } in
  let polls = ref 0 in
  obs_on ();
  with_rack ~boards ~clients:(boards + 1) ~duration (fun sim cluster ->
      for b = 0 to boards - 1 do
        ignore
          (Cluster.install cluster ~board:b ~service:"kv"
             (fst (Kv.behavior ())))
      done;
      (* The stat service as one more capability-gated tile on board 0,
         reachable through netsvc like any service (E13a read it
         in-fabric; here the reader sits across the switch). *)
      let nd = Cluster.node cluster 0 in
      ignore
        (Cluster.install cluster ~board:0 ~service:Statsvc.service_name
           (Statsvc.behavior (Node.kernel nd)));
      Cluster.register_metrics cluster;
      let col = Collector.create cluster in
      let clients =
        List.init boards (fun _ ->
            Shard_client.create cluster ~timeout:20_000 ~service:"kv"
              ~op:Kv.Proto.opcode ~route:Shard_client.By_key
              ~gen:(Cluster_exp.kv_gen 64))
      in
      Sim.after sim 3_000 (fun () ->
          List.iter (fun c -> Shard_client.start c ~concurrency:8) clients);
      Sim.after sim stop_at (fun () -> List.iter Shard_client.stop clients);
      (* Pull path: a raw Netproto poller on its own client port. *)
      let mac, my_mac = Cluster.add_client cluster in
      let target = Node.mac_addr nd in
      let inflight : (int, int) Hashtbl.t = Hashtbl.create 8 in
      let last_rx = ref 0 and last_age = ref 0 and next_id = ref 0 in
      Mac.set_rx mac (fun f ->
          if f.Frame.dst = my_mac then
            match Netproto.decode_response f.Frame.payload with
            | Error _ -> ()
            | Ok rsp -> (
              match Hashtbl.find_opt inflight rsp.Netproto.rsp_id with
              | None -> ()
              | Some t0 ->
                Hashtbl.remove inflight rsp.Netproto.rsp_id;
                incr polls;
                last_rx := Sim.now sim;
                (* the snapshot was read on the board ~RTT/2 ago *)
                last_age := (Sim.now sim - t0) / 2));
      Sim.every sim ~start:period period (fun () ->
          if Sim.now sim <= stop_at then begin
            incr next_id;
            Hashtbl.replace inflight !next_id (Sim.now sim);
            let req =
              {
                Netproto.req_id = !next_id;
                service = Statsvc.service_name;
                op = Statsvc.opcode;
                body = Statsvc.encode_query Statsvc.Board;
              }
            in
            ignore
              (Mac.send mac
                 (Frame.make ~dst:target ~src:my_mac
                    (Netproto.encode_request req)))
          end);
      (* Sample both stalenesses on the rack clock, after each side has
         had one full period plus a round trip to warm up. *)
      Sim.every sim ~start:(3 * period) 500 (fun () ->
          let now = Sim.now sim in
          if now <= stop_at then begin
            observe_stale push (Collector.staleness col ~board:0 ~now);
            observe_stale pull
              (if !last_rx = 0 then now else now - !last_rx + !last_age)
          end);
      fun () ->
        List.iter Shard_client.stop clients;
        Collector.detach col);
  obs_off ();
  (stale_mean push, push.worst, stale_mean pull, pull.worst, !polls)

(* ------------------------------------------------------------------ *)
(* E16e — the collected SLO feed. The elastic scheduler's error budget
   comes either from the shard client's local outcome hook (E14's
   omniscient shortcut) or from the collector's service-outcome stream
   — server-observed serve spans, delivered in-band. Same rack, same
   load, both runs deterministic; the gap between the two attainment
   numbers is what pushing telemetry through the fabric costs in
   fidelity (client-side timeouts never reach a server span). *)

let web_spec =
  {
    Placer.name = "web";
    cells = 20_000;
    state_bytes = 4_096;
    bitstream_bytes = 16_384;
    reservation = 1;
    max_replicas = 3;
    slo_cycles = 5_000;
    capacity_hint = 50;  (* epoch / service time (400) *)
  }

type e_row = {
  er_feed : string;
  er_ops : int;
  er_scale_ups : int;
  er_first_up : int;  (* cycle of the first scale_up, -1 if none *)
  er_attain : float;
  er_alerts : int;
  er_replicas : int;
}

let e16e_run ~feed ~duration =
  obs_on ();
  let r =
    with_rack ~boards:4 ~clients:3 ~duration (fun sim cluster ->
        let cfg =
          {
            Sched.default_config with
            Sched.report_period = 4_000;
            (* autoscale only: load-balance migrations off *)
            hot_load = max_int / 2;
            cold_load = 0;
            slo_window = 1_000;
            slo_min_samples = 4;
          }
        in
        let sched =
          Sched.create ~config:cfg cluster ~slot_cells:(fun _ -> 60_000)
        in
        Sched.add_tenant sched ~spec:web_spec ~behavior:(fun () ->
            Accels.echo ~service:"web" ~cost:400 ());
        let client =
          Shard_client.create cluster ~timeout:20_000 ~service:"web"
            ~op:Accels.op_echo ~route:Shard_client.Round_robin
            ~gen:(fun _ -> ("", Bytes.make 64 'x'))
        in
        let col =
          match feed with
          | `Collected ->
            let col = Collector.create cluster in
            Sched.watch_collected sched ~tenant:"web" col;
            Sched.watch_client_only sched ~tenant:"web" client;
            Some col
          | `Client ->
            Sched.watch sched ~tenant:"web" client;
            None
        in
        Sched.start sched;
        Sim.after sim 3_000 (fun () ->
            Shard_client.start client ~concurrency:4);
        (* diurnal peak: one replica saturates, the autoscaler must act *)
        Sim.after sim (duration / 3) (fun () ->
            Shard_client.start client ~concurrency:12);
        Sim.after sim (duration - 10_000) (fun () ->
            Shard_client.stop client);
        fun () ->
          Shard_client.stop client;
          let slo = Sched.slo sched ~tenant:"web" in
          let t = Sched.totals sched in
          let first_up =
            match
              List.find_opt
                (fun d -> d.Sched.d_kind = "scale_up")
                (Sched.decisions sched)
            with
            | Some d -> d.Sched.d_cycle
            | None -> -1
          in
          (match col with Some c -> Collector.detach c | None -> ());
          {
            er_feed =
              (match feed with
              | `Collected -> "collected (in-band)"
              | `Client -> "client hook (omniscient)");
            er_ops = Shard_client.completed client;
            er_scale_ups = t.Sched.scale_ups;
            er_first_up = first_up;
            er_attain = Slo.attainment_pct slo;
            er_alerts = List.length (Slo.alerts slo);
            er_replicas = Sched.replicas sched ~tenant:"web";
          })
  in
  obs_off ();
  r

(* ------------------------------------------------------------------ *)

let summary_json ~rows ~ops_off ~ops_on ~ops_fast ~pct_on ~pct_fast
    ~(stale : int * int * int * int * int) ~(e_rows : e_row list) =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "{\n  \"periods\": [\n";
  List.iteri
    (fun idx r ->
      Buffer.add_string buf
        (Printf.sprintf
           "    {\"period\": %d, \"ops\": %d, \"records\": %d, \"batches\": \
            %d, \"payload_bytes\": %d, \"wire_bytes\": %d, \"pct_uplink\": \
            %.3f, \"dropped\": %d, \"conserved\": %b}%s\n"
           r.ar_period r.ar_ops r.ar_records r.ar_batches r.ar_payload
           r.ar_wire r.ar_pct_uplink r.ar_dropped r.ar_conserved
           (if idx = List.length rows - 1 then "" else ",")))
    rows;
  Buffer.add_string buf "  ],\n";
  Buffer.add_string buf
    (Printf.sprintf
       "  \"interference\": {\"ops_off\": %d, \"ops_on\": %d, \"ops_fast\": \
        %d, \"pct_on\": %.2f, \"pct_fast\": %.2f},\n"
       ops_off ops_on ops_fast pct_on pct_fast);
  let pm, pw, lm, lw, polls = stale in
  Buffer.add_string buf
    (Printf.sprintf
       "  \"staleness\": {\"push_mean\": %d, \"push_max\": %d, \"pull_mean\": \
        %d, \"pull_max\": %d, \"polls\": %d},\n"
       pm pw lm lw polls);
  Buffer.add_string buf "  \"slo_feed\": [\n";
  List.iteri
    (fun idx r ->
      Buffer.add_string buf
        (Printf.sprintf
           "    {\"feed\": \"%s\", \"ops\": %d, \"scale_ups\": %d, \
            \"first_scale_up\": %d, \"attainment_pct\": %.2f, \"alerts\": \
            %d, \"replicas\": %d}%s\n"
           r.er_feed r.er_ops r.er_scale_ups r.er_first_up r.er_attain
           r.er_alerts r.er_replicas
           (if idx = List.length e_rows - 1 then "" else ",")))
    e_rows;
  Buffer.add_string buf "  ]\n}\n";
  Buffer.contents buf

let e16 () =
  header "E16"
    "in-band telemetry plane: push agents, rack collector, exemplars";
  let sm = small () in
  let boards = 4 in

  subhead "E16a: telemetry bytes on the uplink vs harvest interval";
  let a_stop = if sm then 90_000 else 180_000 in
  let periods =
    if sm then [ 500; 2_000; 8_000 ] else [ 500; 1_000; 2_000; 8_000; 32_000 ]
  in
  let a_rows =
    List.map
      (fun period ->
        e16a_run ~boards ~stop_at:a_stop ~period
          ~artifacts:(period = Agent.default_period))
      periods
  in
  table
    [
      "interval"; "ops"; "records"; "batches"; "payload B"; "wire B";
      "% uplink"; "dropped"; "books";
    ]
    (List.map
       (fun r ->
         [
           commas r.ar_period;
           i r.ar_ops;
           commas r.ar_records;
           i r.ar_batches;
           commas r.ar_payload;
           commas r.ar_wire;
           Printf.sprintf "%.3f" r.ar_pct_uplink;
           i r.ar_dropped;
           (if r.ar_conserved then "exact" else "VIOLATED");
         ])
       a_rows);
  Printf.printf
    "(wire bytes = batch payloads + %dB of Ethernet per frame, on the\n\
    \ boards' own 100G uplinks; \"books exact\" is the per-board identity\n\
    \ emitted = delivered + dropped + lost + in-flight, wire loss\n\
    \ cross-checked against the collector's gap detector. Drops grow\n\
    \ with the interval because the flush budget is per tick while the\n\
    \ span stream is not: a longer harvest interval thins counter\n\
    \ deltas, not span completions)\n"
    frame_overhead;
  Printf.printf
    "exemplars + collected trace (default interval) -> %s, %s\n"
    "BENCH_e16_exemplars.json" "BENCH_e16_trace.json";

  subhead "E16b: workload interference, agents off vs on (same drill)";
  let b_stop = a_stop in
  let _, b_duration = quiesce ~stop_at:b_stop ~period:2_000 in
  let ops_off, off50, off99 =
    e16b_run ~boards ~stop_at:b_stop ~duration:b_duration ~agent_period:None
  in
  let ops_on, on50, on99 =
    e16b_run ~boards ~stop_at:b_stop ~duration:b_duration
      ~agent_period:(Some Agent.default_period)
  in
  let ops_fast, fast50, fast99 =
    e16b_run ~boards ~stop_at:b_stop ~duration:b_duration
      ~agent_period:(Some 500)
  in
  let delta on =
    100.0 *. float_of_int (ops_off - on) /. float_of_int (max 1 ops_off)
  in
  let pct_on = delta ops_on and pct_fast = delta ops_fast in
  let row name ops l50 l99 d =
    [
      name; i ops;
      f1 (throughput_per_sec ~count:ops ~cycles:b_stop /. 1000.0);
      i l50; i l99; d;
    ]
  in
  table
    [ "agents"; "ops"; "kops/s"; "p50"; "p99"; "ops vs off" ]
    [
      row "off" ops_off off50 off99 "-";
      row
        (Printf.sprintf "on, every %s" (commas Agent.default_period))
        ops_on on50 on99
        (Printf.sprintf "%+.2f%%" (-.pct_on));
      row "on, every 500" ops_fast fast50 fast99
        (Printf.sprintf "%+.2f%%" (-.pct_fast));
    ];

  subhead "E16c: conservation under congestion (port down + starved queue)";
  let kill_at, restore_at, c_stop =
    if sm then (40_000, 80_000, 130_000) else (80_000, 160_000, 240_000)
  in
  let c_ops, c_rows =
    e16c_run ~boards ~victim:2 ~kill_at ~restore_at ~stop_at:c_stop
  in
  table
    [
      "board"; "emitted"; "delivered"; "dropped@agent"; "lost wire";
      "gap-detected"; "in flight"; "backpressure"; "books";
    ]
    (List.map
       (fun r ->
         [
           i r.ac_board;
           commas r.ac_emitted;
           commas r.ac_delivered;
           commas r.ac_dropped;
           commas r.ac_lost;
           commas r.ac_detected;
           i r.ac_queued;
           i r.ac_backpressure;
           (if
              r.ac_emitted
              = r.ac_delivered + r.ac_dropped + r.ac_lost + r.ac_queued
              && r.ac_lost = r.ac_detected
            then "exact"
            else "VIOLATED");
         ])
       c_rows);
  Printf.printf
    "%d ops; board 2's port was down %s..%s (its agent kept sending into\n\
     the void), every agent ran a 96-record queue at one 512B frame per\n\
     tick -> %s\n"
    c_ops (commas kill_at) (commas restore_at) "BENCH_e16_conservation.json";

  subhead "E16d: freshness at the rack, push vs stat-service pull";
  let d_stop = if sm then 90_000 else 150_000 in
  let pm, pw, lm, lw, polls = e16d_run ~boards ~stop_at:d_stop in
  table
    [ "plane"; "mean staleness"; "us"; "max"; "us" ]
    [
      [ "push (collector)"; commas pm; f1 (us_of_cycles pm); commas pw;
        f1 (us_of_cycles pw) ];
      [ Printf.sprintf "pull (stat poll x%d)" polls; commas lm;
        f1 (us_of_cycles lm); commas lw; f1 (us_of_cycles lw) ];
    ];
  Printf.printf
    "(same 100G switch, same %s-cycle cadence: freshness ties, as it\n\
    \ must — the difference is payload and scaling. One poll returns one\n\
    \ board-wide Perf snapshot per round trip; one push batch carries\n\
    \ every instrument delta plus sampled span completions, for the\n\
    \ whole rack, with loss-exact accounting)\n"
    (commas Agent.default_period);

  subhead "E16e: autoscaler fed by collected spans vs the client hook";
  let e_duration = if sm then 150_000 else 300_000 in
  let e_rows =
    [
      e16e_run ~feed:`Client ~duration:e_duration;
      e16e_run ~feed:`Collected ~duration:e_duration;
    ]
  in
  table
    [
      "SLO feed"; "ops"; "scale-ups"; "first at"; "attain %"; "alerts";
      "replicas";
    ]
    (List.map
       (fun r ->
         [
           r.er_feed;
           i r.er_ops;
           i r.er_scale_ups;
           (if r.er_first_up < 0 then "-" else commas r.er_first_up);
           f2 r.er_attain;
           i r.er_alerts;
           i r.er_replicas;
         ])
       e_rows);
  Printf.printf
    "(the collected feed sees server-observed serve time and misses\n\
    \ client-side timeouts; the scale-up decision itself should agree)\n";

  write_file "BENCH_e16_telemetry.json"
    (summary_json ~rows:a_rows ~ops_off ~ops_on ~ops_fast ~pct_on ~pct_fast
       ~stale:(pm, pw, lm, lw, polls) ~e_rows);
  Printf.printf "\nsummary -> BENCH_e16_telemetry.json\n"
