(* E12 — multi-board rack: sharded scale-out, cross-board invocation
   penalty, and a failover drill.

   The paper's setting is network-attached FPGAs in a datacenter; E7/E11
   measured one board. Here N full Apiary boards share one ToR switch
   (lib/cluster), services register in a rack directory, and external
   clients shard a request stream across boards with client-side
   failover. APIARY_E12_SMALL=1 shrinks the sweep for CI smoke runs. *)

module Sim = Apiary_engine.Sim
module Par_sim = Apiary_engine.Par_sim
module Rng = Apiary_engine.Rng
module Stats = Apiary_engine.Stats
module Shell = Apiary_core.Shell
module Kv = Apiary_accel.Kv
module Accels = Apiary_accel.Accels
module Cluster = Apiary_cluster.Cluster
module Shard_client = Apiary_cluster.Shard_client
module Span = Apiary_obs.Span
module Registry = Apiary_obs.Registry
module Export = Apiary_obs.Export
module Series = Apiary_obs.Series
open Bench_util

let small () = Sys.getenv_opt "APIARY_E12_SMALL" <> None
let bytes_of n = Bytes.make n 'x'

(* Build a rack, let [body] populate it (returning the result
   extractor), run for [duration], extract. Under APIARY_PAR=boards the
   rack is partitioned one-board-per-domain with the board uplink's
   126-cycle latency as lookahead and executed by the parallel engine —
   byte-identical results, wall-clock spread over the domains. *)
let with_rack ~boards ~clients ~duration body =
  (* Deterministic telemetry capture needs a monolithic engine, so --obs
     runs ignore APIARY_PAR=boards: the whole invocation's output is
     then engine-independent. *)
  match (if !obs_enabled then `Off else par_mode ()) with
  | `Boards ->
    (* APIARY_DOMAINS caps the domain fan-out below the member count;
       the engine's busiest-first work stealing then keeps the smaller
       domain pool fed. Unset, every member gets its own domain. *)
    let domains =
      match Sys.getenv_opt "APIARY_DOMAINS" with
      | Some s -> ( try max 1 (int_of_string s) with _ -> boards + 1)
      | None -> boards + 1
    in
    let eng =
      Par_sim.create ~mode:Par_sim.Par ~adaptive:true ~domains
        ~lookahead:Cluster.lookahead ~n:(boards + 1) ()
    in
    let sim = Par_sim.sim eng 0 in
    let cluster =
      Cluster.create ~engine:eng sim ~boards ~client_ports:(clients + 1)
    in
    let finish = body sim cluster in
    Par_sim.run_until eng duration;
    Par_sim.shutdown eng;
    finish ()
  | `Mesh | `Off ->
    let sim = Sim.create () in
    let cluster = Cluster.create sim ~boards ~client_ports:(clients + 1) in
    let finish = body sim cluster in
    Sim.run_for sim duration;
    finish ()

(* The parallel engine already owns the cores; nesting sweep-level
   domain parallelism on top would oversubscribe them. *)
let sweep_map f items =
  if par_mode () = `Boards then List.map f items else parallel_map f items

(* Deterministic keyed KV workload: work item [n] touches key
   [n mod 167]; even items PUT, odd items GET. *)
let kv_gen value_bytes n =
  let key = Printf.sprintf "k%03d" (n mod 167) in
  let req =
    if n land 1 = 0 then Kv.Proto.Put (key, bytes_of value_bytes)
    else Kv.Proto.Get key
  in
  (key, Kv.Proto.encode_req req)

(* ------------------------------------------------------------------ *)
(* E12a — sharded KV: aggregate throughput and latency vs board count.
   One KV replica per board (each owning a keyspace slice via the
   consistent-hash ring) and one closed-loop client per board, so both
   offered load and serving capacity scale with N. *)

let e12a_run ~boards ~duration =
  with_rack ~boards ~clients:boards ~duration (fun sim cluster ->
      for b = 0 to boards - 1 do
        ignore
          (Cluster.install cluster ~board:b ~service:"kv" (fst (Kv.behavior ())))
      done;
      let clients =
        List.init boards (fun _ ->
            Shard_client.create cluster ~service:"kv" ~op:Kv.Proto.opcode
              ~route:Shard_client.By_key ~gen:(kv_gen 64))
      in
      Sim.after sim 3_000 (fun () ->
          List.iter (fun c -> Shard_client.start c ~concurrency:16) clients);
      fun () ->
        List.iter Shard_client.stop clients;
        let lat = Stats.Histogram.create "e12a" in
        List.iter
          (fun c ->
            Stats.Histogram.merge_into ~src:(Shard_client.latency c) ~dst:lat)
          clients;
        let ops =
          List.fold_left (fun a c -> a + Shard_client.completed c) 0 clients
        in
        (ops, p50 lat, p99 lat))

(* ------------------------------------------------------------------ *)
(* E12b — the cost of location transparency: the same service invoked
   through the same Cluster.connect/call API from a board that hosts a
   replica (resolves Local) and from one that doesn't (resolves Remote,
   via netsvc + ToR). Companion to E11's fabric-vs-network gap. *)

(* Board-shell-driven connect/call — the workload the replicated
   directory unlocked for partitioned runs: each caller resolves from
   its own board's replica, so under APIARY_PAR=boards the two callers
   live on different domains. *)
let e12b_run ~duration =
  with_rack ~boards:2 ~clients:0 ~duration (fun _sim cluster ->
      ignore
        (Cluster.install cluster ~board:0 ~service:"ctl"
           (Accels.echo ~service:"ctl" ~cost:4 ()));
      let caller board h =
        Shell.behavior "caller" ~on_boot:(fun sh ->
            Sim.after (Shell.sim sh) 3_000 (fun () ->
                Cluster.connect cluster ~board sh ~service:"ctl" (fun r ->
                    match r with
                    | Error _ -> ()
                    | Ok target ->
                      let rec go () =
                        let t0 = Shell.now sh in
                        Cluster.call cluster ~board sh target ~op:Accels.op_echo
                          (bytes_of 32) (fun _ ->
                            Stats.Histogram.record h (Shell.now sh - t0);
                            go ())
                      in
                      go ())))
      in
      let local_h = Stats.Histogram.create "local" in
      let remote_h = Stats.Histogram.create "remote" in
      ignore (Cluster.install cluster ~board:0 (caller 0 local_h));
      ignore (Cluster.install cluster ~board:1 (caller 1 remote_h));
      fun () -> (p50 local_h, p50 remote_h))

(* ------------------------------------------------------------------ *)
(* E12c — stateless scale-out: one video encoder per board behind
   round-robin spreading (E7a's intra-board sweep, taken cross-board). *)

let e12c_run ~boards ~duration =
  with_rack ~boards ~clients:boards ~duration (fun sim cluster ->
      for b = 0 to boards - 1 do
        ignore
          (Cluster.install cluster ~board:b ~service:"enc"
             (Accels.video_encoder ~service:"enc" ()))
      done;
      let chunk =
        let rng = Rng.create ~seed:11 in
        Rng.bytes_compressible rng 1024 ~redundancy:0.85
      in
      let clients =
        List.init boards (fun _ ->
            Shard_client.create cluster ~service:"enc" ~op:Accels.op_encode
              ~route:Shard_client.Round_robin ~gen:(fun _ -> ("", chunk)))
      in
      Sim.after sim 3_000 (fun () ->
          List.iter (fun c -> Shard_client.start c ~concurrency:16) clients);
      fun () ->
        List.iter Shard_client.stop clients;
        List.fold_left (fun a c -> a + Shard_client.completed c) 0 clients)

(* ------------------------------------------------------------------ *)
(* E12d — failover drill: kill one of four boards mid-run, watch the
   clients time out, reshard onto the three survivors and carry on; then
   bring the board back and watch it re-admitted. No operator anywhere:
   detection is client-side timeout, recovery is the cluster's
   re-registration announcement. *)

let e12d_run ~duration ~kill_at ~restore_at ~interval =
  let boards = 4 in
  let victim = 2 in
  let series = Stats.Series.create "e12d" ~interval in
  let clients =
    with_rack ~boards ~clients:boards ~duration (fun sim cluster ->
        for b = 0 to boards - 1 do
          ignore
            (Cluster.install cluster ~board:b ~service:"kv"
               (fst (Kv.behavior ())))
        done;
        let clients =
          List.init boards (fun _ ->
              Shard_client.create cluster ~timeout:20_000 ~service:"kv"
                ~op:Kv.Proto.opcode ~route:Shard_client.By_key ~gen:(kv_gen 64))
        in
        List.iter
          (fun c ->
            Shard_client.set_on_complete c (fun ~now ->
                Stats.Series.record series ~now 1.0))
          clients;
        Sim.after sim 3_000 (fun () ->
            List.iter (fun c -> Shard_client.start c ~concurrency:8) clients);
        (* Failure injection and recovery both run on the rack simulator
           (member 0 when partitioned): switch port state, directory and
           ring mutations never leave that domain. *)
        Sim.after sim kill_at (fun () -> Cluster.kill cluster ~board:victim);
        Sim.after sim restore_at (fun () ->
            Cluster.restore cluster ~board:victim);
        fun () ->
          List.iter Shard_client.stop clients;
          clients)
  in
  let buckets = Stats.Series.buckets series in
  let avg_over lo hi =
    let sel =
      List.filter (fun (t, _) -> t >= lo && t + interval <= hi) buckets
    in
    match sel with
    | [] -> 0.0
    | sel ->
      List.fold_left (fun a (_, v) -> a +. v) 0.0 sel
      /. float_of_int (List.length sel)
  in
  let pre = avg_over (kill_at / 2) kill_at in
  (* Degraded window: from the kill until the first bucket back at ≥90%
     of the pre-kill per-bucket rate (resharding onto survivors). *)
  let recovered_at =
    let rec scan = function
      | [] -> restore_at
      | (t, v) :: rest ->
        if t >= kill_at && v >= 0.9 *. pre then t else scan rest
    in
    scan buckets
  in
  let degraded = avg_over kill_at recovered_at in
  let resharded = avg_over recovered_at restore_at in
  let post = avg_over (restore_at + (2 * interval)) duration in
  let failovers =
    List.fold_left (fun a c -> a + Shard_client.failovers c) 0 clients
  in
  let survivors = Shard_client.live_boards (List.hd clients) in
  (pre, degraded, resharded, post, recovered_at - kill_at, failovers, survivors)

(* ------------------------------------------------------------------ *)
(* Telemetry capture (--obs). Two dedicated fixed-seed runs, both on a
   monolithic engine so every export is byte-stable:

   - e12o: a single cross-board KV call, exported as a Chrome trace.
     Grouping on the caller's corr id reconstructs the journey — the
     cluster "call" and monitor "rpc" on board 1, the netsvc "remote"
     with its req_id, the ToR "fwd", and (joining on req_id) board 0's
     "serve" plus the kv tile's fabric RPC with per-hop NoC spans.

   - e12d at full drill scale with spans + the metrics registry + a
     windowed latency series attached: deterministic head sampling
     (hash(corr) mod N, plus always-keep tail rules for slow/error
     spans) keeps the whole 600k-cycle drill inside the span cap with
     zero drops, and the series export shows the kill as a p999 spike
     and throughput dip, window by window. *)

let e12_obs_call () =
  Span.reset ();
  Span.set_enabled true;
  let sim = Sim.create () in
  let cluster = Cluster.create sim ~boards:2 ~client_ports:1 in
  ignore
    (Cluster.install cluster ~board:0 ~service:"kv" (fst (Kv.behavior ())));
  let status = ref "no reply" in
  let caller =
    Shell.behavior "caller" ~on_boot:(fun sh ->
        Sim.after (Shell.sim sh) 2_000 (fun () ->
            Cluster.connect cluster ~board:1 sh ~service:"kv" (fun r ->
                match r with
                | Error e -> status := Shell.rpc_error_to_string e
                | Ok target ->
                  Cluster.call cluster ~board:1 sh target ~op:Kv.Proto.opcode
                    (Kv.Proto.encode_req (Kv.Proto.Put ("k001", bytes_of 64)))
                    (fun r ->
                      status :=
                        (match r with
                        | Ok _ -> "ok"
                        | Error e -> Shell.rpc_error_to_string e)))))
  in
  ignore (Cluster.install cluster ~board:1 caller);
  Sim.run_for sim 60_000;
  Span.set_enabled false;
  Export.chrome_trace ~path:"BENCH_obs_call_trace.json" (Span.events ());
  Printf.printf "obs: one cross-board kv call (%s), %d spans -> %s\n" !status
    (Span.count ()) "BENCH_obs_call_trace.json";
  Span.reset ()

let e12_obs_drill () =
  Registry.clear ();
  Span.reset ();
  (* Deterministic sampling is what lets the capture run at full drill
     scale: keep 1-in-8 corr families head-on, plus every span slower
     than the client timeout or error-tagged (timeout/failover/deny). *)
  Span.set_sampling ~head_mod:8 ~slow_cycles:20_000 ();
  Span.set_enabled true;
  let duration, kill_at, restore_at, window =
    if small () then (300_000, 80_000, 180_000, 5_000)
    else (600_000, 150_000, 350_000, 10_000)
  in
  let boards = 4 and victim = 2 in
  let sim = Sim.create () in
  let cluster = Cluster.create sim ~boards ~client_ports:(boards + 1) in
  for b = 0 to boards - 1 do
    ignore
      (Cluster.install cluster ~board:b ~service:"kv" (fst (Kv.behavior ())))
  done;
  let clients =
    List.init boards (fun _ ->
        Shard_client.create cluster ~timeout:20_000 ~service:"kv"
          ~op:Kv.Proto.opcode ~route:Shard_client.By_key ~gen:(kv_gen 64))
  in
  Cluster.register_metrics cluster;
  List.iter Shard_client.register_metrics clients;
  (* Windowed rollups of every request outcome: latency distribution per
     window for the good ones, a bad-outcome count for the rest. Windows
     roll lazily on each observation (plus the close_upto at the end), so
     no clock hook is needed — Series.attach would arm a wake every
     window and defeat the engine's idle fast-forward. *)
  let series = Series.create ~window () in
  List.iter
    (fun c ->
      Shard_client.set_on_outcome c (fun ~now ~req:_ ~latency ->
          match latency with
          | Some l -> Series.observe series ~now "kv.latency" l
          | None -> Series.observe series ~now "kv.bad" 0))
    clients;
  Sim.after sim 3_000 (fun () ->
      List.iter (fun c -> Shard_client.start c ~concurrency:8) clients);
  Sim.after sim kill_at (fun () -> Cluster.kill cluster ~board:victim);
  Sim.after sim restore_at (fun () -> Cluster.restore cluster ~board:victim);
  Sim.run_for sim duration;
  List.iter Shard_client.stop clients;
  Span.set_enabled false;
  Series.close_upto series duration;
  Export.chrome_trace ~dropped:(Span.dropped ()) ~path:"BENCH_obs_trace.json"
    (Span.events ());
  Export.metrics_json ~path:"BENCH_obs_metrics.json" (Registry.snapshot ());
  Series.write_json series "BENCH_obs_series.json";
  let completed =
    List.fold_left (fun a c -> a + Shard_client.completed c) 0 clients
  in
  Printf.printf
    "obs: failover drill, %d ops, %d spans (%d sampled away, %d dropped) -> %s\n\
     obs: %d instruments -> %s\n"
    completed (Span.count ()) (Span.sampled ()) (Span.dropped ())
    "BENCH_obs_trace.json"
    (List.length (Registry.snapshot ()))
    "BENCH_obs_metrics.json";
  (* Tail latency over time, around the kill: the whole point of the
     windowed series — the p999 spike and its decay are visible without
     opening the trace. *)
  let rows =
    Series.rollups series "kv.latency"
    |> List.filter (fun (r : Series.rollup) ->
           r.Series.r_start >= kill_at - (2 * window)
           && r.Series.r_start < kill_at + (6 * window))
  in
  subhead "windowed kv latency around the kill (BENCH_obs_series.json)";
  table
    [ "window start"; "ops"; "p50"; "p99"; "p999"; "max" ]
    (List.map
       (fun (r : Series.rollup) ->
         [
           commas r.Series.r_start;
           i r.Series.r_count;
           i r.Series.r_p50;
           i r.Series.r_p99;
           i r.Series.r_p999;
           i r.Series.r_max;
         ])
       rows);
  Printf.printf "obs: %d windows x %d cycles -> %s\n"
    (Series.closed series "kv.latency")
    window "BENCH_obs_series.json";
  Span.set_sampling ();
  Span.reset ();
  Registry.clear ()

let e12_obs () =
  subhead "E12 telemetry capture (--obs)";
  e12_obs_call ();
  e12_obs_drill ()

(* ------------------------------------------------------------------ *)

let e12 () =
  header "E12"
    "multi-board rack: sharded scale-out, remote penalty, failover drill";
  let sm = small () in
  let board_counts = if sm then [ 1; 2; 4 ] else [ 1; 2; 4; 8 ] in
  let duration = if sm then 120_000 else 300_000 in

  subhead "E12a: sharded KV, one replica + one client per board";
  let kv_results =
    sweep_map (fun boards -> e12a_run ~boards ~duration) board_counts
  in
  let base_ops =
    match kv_results with (ops, _, _) :: _ -> max 1 ops | [] -> 1
  in
  table
    [ "boards"; "ops"; "kops/s"; "speedup"; "p50 us"; "p99 us" ]
    (List.map2
       (fun boards (ops, l50, l99) ->
         [
           i boards;
           i ops;
           f1 (throughput_per_sec ~count:ops ~cycles:duration /. 1000.0);
           f2 (float_of_int ops /. float_of_int base_ops);
           f1 (us_of_cycles l50);
           f1 (us_of_cycles l99);
         ])
       board_counts kv_results);

  subhead "E12b: the same Cluster.call, local replica vs remote board";
  let l50, r50 = e12b_run ~duration:(if sm then 150_000 else 300_000) in
  table
    [ "resolution"; "RTT p50"; "us"; "vs local" ]
    [
      [ "Local (replica on own fabric)"; i l50; f1 (us_of_cycles l50); "1.0x" ];
      [ "Remote (netsvc + ToR hop)"; i r50; f1 (us_of_cycles r50);
        f1 (float_of_int r50 /. float_of_int (max 1 l50)) ^ "x" ];
    ];
  Printf.printf
    "(one cross-board hop sits between E11's fabric RTT and its\n\
    \ remote-CPU RTT: the wire is the same, but the far end is a tile,\n\
    \ not an interrupt handler)\n";

  subhead "E12c: stateless encoders, round-robin across boards";
  let enc_counts = if sm then [ 1; 2 ] else [ 1; 2; 4 ] in
  let enc_results =
    sweep_map (fun boards -> e12c_run ~boards ~duration) enc_counts
  in
  let enc_base = match enc_results with n :: _ -> max 1 n | [] -> 1 in
  table
    [ "boards"; "chunks"; "kchunks/s"; "speedup" ]
    (List.map2
       (fun boards n ->
         [
           i boards;
           i n;
           f1 (throughput_per_sec ~count:n ~cycles:duration /. 1000.0);
           f2 (float_of_int n /. float_of_int enc_base);
         ])
       enc_counts enc_results);

  subhead "E12d: failover drill (kill board 2 of 4, then bring it back)";
  let duration, kill_at, restore_at, interval =
    if sm then (300_000, 80_000, 180_000, 5_000)
    else (600_000, 150_000, 350_000, 10_000)
  in
  let pre, degraded, resharded, post, window, failovers, survivors =
    e12d_run ~duration ~kill_at ~restore_at ~interval
  in
  let kops per_bucket =
    f1 (throughput_per_sec ~count:(int_of_float per_bucket) ~cycles:interval
        /. 1000.0)
  in
  table
    [ "phase"; "kops/s" ]
    [
      [ "before kill (4 boards)"; kops pre ];
      [ "degraded window (timeouts draining)"; kops degraded ];
      [ "resharded steady state (3 boards)"; kops resharded ];
      [ "after restore (4 boards again)"; kops post ];
    ];
  Printf.printf
    "degraded window: %s cycles (%.0f us)   timeouts+reissues: %d   live boards at end: %d\n"
    (commas window)
    (us_of_cycles window)
    failovers (List.length survivors);
  Printf.printf
    "(survivors restore service on their own: client timeouts reshard the\n\
    \ keyspace, the directory drops the dead board, and recovery is a\n\
    \ re-registration announcement — no operator in the loop)\n";
  if !obs_enabled then e12_obs ()
